//! Mapped regions of recoverable memory (§4.1).
//!
//! A region is a page-aligned slice of an external data segment copied into
//! process memory at map time ("the copying of data from external data
//! segment to virtual memory occurs when a region is mapped"). The memory
//! block is allocated once and never moves while mapped, so raw pointers
//! into it — the idiom of the original C interface — remain valid.
//!
//! Two APIs are offered:
//!
//! * a **safe API** ([`Region::read`], [`Region::write`],
//!   [`Region::modify`], typed accessors) in which every access is
//!   bounds-checked and internally synchronized, and writes implicitly
//!   declare their range to the enclosing transaction;
//! * an **unsafe API** ([`Region::base_ptr`] plus
//!   [`Transaction::set_range_ptr`](crate::Transaction::set_range_ptr))
//!   mirroring the C library for applications that lay out structs in
//!   recoverable memory directly.
//!
//! Serializability remains the application's business (§3.1): the internal
//! lock only makes individual operations atomic, exactly as the C library
//! was multi-thread safe without providing concurrency control.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rvm_storage::Device;

use crate::error::{Result, RvmError};
use crate::options::PAGE_SIZE;
use crate::scrub::SegmentChecksums;
use crate::segment::SegmentId;
use crate::stats::MediaCounters;
use crate::truncation::page_vector::PageVector;
use crate::txn::Transaction;

/// Names a region of an external data segment for mapping (§4.2's
/// `region_desc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionDescriptor {
    /// The segment's name (a path under the default resolver).
    pub segment: String,
    /// Page-aligned byte offset of the region within the segment.
    pub offset: u64,
    /// Region length; a positive multiple of the page size.
    pub len: u64,
}

impl RegionDescriptor {
    /// Describes `[offset, offset + len)` of the named segment.
    pub fn new(segment: impl Into<String>, offset: u64, len: u64) -> Self {
        Self {
            segment: segment.into(),
            offset,
            len,
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        // Checked first: the alignment diagnostics below (and every
        // downstream `offset + len`, e.g. `ByteRange::at`) assume the
        // end fits in u64.
        if self.offset.checked_add(self.len).is_none() {
            return Err(RvmError::BadMapping(format!(
                "region at {} of '{}' with length {} overflows u64",
                self.offset, self.segment, self.len
            )));
        }
        if self.len == 0
            || !self.len.is_multiple_of(PAGE_SIZE)
            || !self.offset.is_multiple_of(PAGE_SIZE)
        {
            return Err(RvmError::BadMapping(format!(
                "region [{}, {}) of '{}' is not page-aligned (page size {})",
                self.offset,
                self.offset + self.len,
                self.segment,
                PAGE_SIZE
            )));
        }
        Ok(())
    }
}

/// The region's stable memory block.
///
/// Allocation is zeroed and page-aligned; the block never moves or resizes
/// while the region lives, which is what makes the pointer-based API sound
/// to offer at all.
pub(crate) struct RegionMemory {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: the raw block is plain bytes; all access is synchronized either
// by `RegionInner::mem_lock` (safe API and library internals) or by the
// caller's contract (unsafe API).
unsafe impl Send for RegionMemory {}
// SAFETY: as above — shared access without external synchronization is
// forbidden by the access methods' contracts.
unsafe impl Sync for RegionMemory {}

impl RegionMemory {
    pub(crate) fn alloc(len: usize) -> Self {
        assert!(len > 0, "regions are never empty");
        let layout = Layout::from_size_align(len, PAGE_SIZE as usize).expect("valid region layout");
        // SAFETY: layout has non-zero size (asserted above).
        let raw = unsafe { alloc_zeroed(layout) };
        let ptr = NonNull::new(raw).expect("region allocation failed");
        Self { ptr, len }
    }

    pub(crate) fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Validates `[offset, offset + len)` against the block, in release
    /// builds too — an out-of-bounds raw-memory access must never be one
    /// `debug_assert!` away from undefined behaviour.
    fn check(&self, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(RvmError::OutOfRange {
                offset: offset as u64,
                len: len as u64,
                region_len: self.len as u64,
            });
        }
        Ok(())
    }

    /// Copies `buf.len()` bytes out of the block at `offset`, failing on
    /// out-of-bounds ranges.
    ///
    /// # Safety
    ///
    /// The caller must hold the region's lock (shared suffices) or
    /// otherwise guarantee no concurrent writer overlaps the range.
    pub(crate) unsafe fn copy_out(&self, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.check(offset, buf.len())?;
        // SAFETY: bounds checked above; regions of distinct allocations
        // never overlap.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.ptr.as_ptr().add(offset),
                buf.as_mut_ptr(),
                buf.len(),
            );
        }
        Ok(())
    }

    /// Copies `data` into the block at `offset`, failing on out-of-bounds
    /// ranges.
    ///
    /// # Safety
    ///
    /// The caller must hold the region's lock exclusively (or otherwise
    /// exclude all concurrent access to the range).
    pub(crate) unsafe fn copy_in(&self, offset: usize, data: &[u8]) -> Result<()> {
        self.check(offset, data.len())?;
        // SAFETY: bounds checked above.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.as_ptr().add(offset), data.len());
        }
        Ok(())
    }

    /// Returns a mutable slice over `[offset, offset + len)`, failing on
    /// out-of-bounds ranges.
    ///
    /// # Safety
    ///
    /// The caller must hold the region's lock exclusively for the lifetime
    /// of the slice.
    #[allow(clippy::mut_from_ref)] // exclusivity comes from the mem_lock, not &mut self
    pub(crate) unsafe fn slice_mut(&self, offset: usize, len: usize) -> Result<&mut [u8]> {
        self.check(offset, len)?;
        // SAFETY: exclusivity guaranteed by the caller; bounds checked
        // above.
        Ok(unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr().add(offset), len) })
    }
}

impl Drop for RegionMemory {
    fn drop(&mut self) {
        let layout =
            Layout::from_size_align(self.len, PAGE_SIZE as usize).expect("valid region layout");
        // SAFETY: `ptr` was allocated with exactly this layout in `alloc`.
        unsafe { dealloc(self.ptr.as_ptr(), layout) };
    }
}

/// Library-internal state of a mapped region.
pub(crate) struct RegionInner {
    pub(crate) id: u64,
    pub(crate) seg: SegmentId,
    pub(crate) seg_name: String,
    pub(crate) seg_dev: Arc<dyn Device>,
    pub(crate) seg_offset: u64,
    pub(crate) len: u64,
    pub(crate) mem: RegionMemory,
    /// Guards memory access for the safe API and library internals.
    pub(crate) mem_lock: RwLock<()>,
    pub(crate) mapped: AtomicBool,
    /// Active transactions holding `set_range`s on this region.
    pub(crate) uncommitted_txns: AtomicU64,
    pub(crate) page_vector: Mutex<PageVector>,
    /// `None` once fully loaded; otherwise tracks which pages still need
    /// fetching from the segment (the on-demand load policy).
    pub(crate) unloaded: Mutex<Option<Vec<bool>>>,
    /// Per-page checksum catalog of the backing segment
    /// ([`Tuning::segment_checksums`](crate::Tuning)); `None` disables
    /// media scrutiny for this region.
    pub(crate) catalog: Option<Arc<SegmentChecksums>>,
    /// Set (and never cleared while mapped) when unrecoverable media
    /// corruption quarantines the region: reads of loaded pages keep
    /// working, new `set_range`s fail with [`RvmError::Media`].
    pub(crate) degraded: AtomicBool,
    /// Instance-wide media counters (shared with `Stats`).
    pub(crate) media: Arc<MediaCounters>,
}

impl RegionInner {
    pub(crate) fn check_mapped(&self) -> Result<()> {
        if self.mapped.load(Ordering::Acquire) {
            Ok(())
        } else {
            Err(RvmError::Unmapped)
        }
    }

    pub(crate) fn check_bounds(&self, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(RvmError::OutOfRange {
                offset,
                len,
                region_len: self.len,
            });
        }
        Ok(())
    }

    /// Returns `true` once unrecoverable corruption quarantined the
    /// region.
    pub(crate) fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// The error writes to an already-quarantined region fail with.
    pub(crate) fn degraded_error(&self) -> RvmError {
        RvmError::Media(format!(
            "region [{}, {}) of segment '{}' is quarantined (degraded, read-only) \
             after unrecoverable media corruption",
            self.seg_offset,
            self.seg_offset + self.len,
            self.seg_name
        ))
    }

    /// Quarantines the region (once), returning the [`RvmError::Media`]
    /// describing the unrecoverable page.
    pub(crate) fn quarantine(&self, seg_page: usize) -> RvmError {
        if !self.degraded.swap(true, Ordering::AcqRel) {
            self.media
                .regions_quarantined
                .fetch_add(1, Ordering::Relaxed);
        }
        RvmError::Media(format!(
            "segment '{}' page {} failed checksum verification and no replica or \
             committed image could repair it; region quarantined (read-only)",
            self.seg_name, seg_page
        ))
    }

    /// Reads region page `page` (one full [`PAGE_SIZE`] block) from the
    /// segment, under checksum scrutiny when a catalog is attached: mirror
    /// read-repair and transient re-reads first, quarantine when the page
    /// stays unverifiable. This is the load half of the repair ladder —
    /// a page being *loaded* is by definition not in VM and (map-time
    /// truncation having drained the segment's live log records) not
    /// reconstructible from the log, so the mirror is its only donor.
    pub(crate) fn fetch_page_verified(&self, page: usize, buf: &mut [u8]) -> Result<()> {
        let page_off = page as u64 * PAGE_SIZE;
        let Some(catalog) = &self.catalog else {
            self.seg_dev.read_at(self.seg_offset + page_off, buf)?;
            return Ok(());
        };
        // Region offsets are page-aligned, so region page i is segment
        // page (seg_offset / PAGE_SIZE) + i exactly.
        let seg_page = ((self.seg_offset + page_off) / PAGE_SIZE) as usize;
        let (verified, healed) =
            crate::scrub::read_page_verified(self.seg_dev.as_ref(), catalog, seg_page, buf)?;
        self.media.pages_scrubbed.fetch_add(1, Ordering::Relaxed);
        if healed {
            self.media
                .corruptions_detected
                .fetch_add(1, Ordering::Relaxed);
            self.media
                .corruptions_repaired
                .fetch_add(1, Ordering::Relaxed);
        }
        if !verified {
            self.media
                .corruptions_detected
                .fetch_add(1, Ordering::Relaxed);
            return Err(self.quarantine(seg_page));
        }
        Ok(())
    }

    /// Copies the committed image in from the segment device (map time).
    pub(crate) fn load_from_segment(&self) -> Result<()> {
        if self.catalog.is_some() {
            // Page-wise verified load; the bulk path below has no
            // per-page checksum boundary to verify against.
            let pages = (self.len / PAGE_SIZE) as usize;
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            for page in 0..pages {
                self.fetch_page_verified(page, &mut buf)?;
                let _guard = self.mem_lock.write();
                // SAFETY: exclusive lock held; bounds derived from the
                // region length.
                unsafe { self.mem.copy_in(page * PAGE_SIZE as usize, &buf) }?;
            }
            *self.unloaded.lock() = None;
            return Ok(());
        }
        {
            let _guard = self.mem_lock.write();
            // SAFETY: exclusive lock held; the slice covers the whole
            // block.
            let buf = unsafe { self.mem.slice_mut(0, self.len as usize) }?;
            self.seg_dev.read_at(self.seg_offset, buf)?;
        }
        // `unloaded` ranks before `mem_lock` (`ensure_loaded` repairs
        // pages under it), so the guard above must be gone first.
        *self.unloaded.lock() = None;
        Ok(())
    }

    /// Ensures every page overlapping `[offset, offset + len)` holds its
    /// committed image (no-op for eagerly loaded regions).
    pub(crate) fn ensure_loaded(&self, offset: u64, len: u64) -> Result<()> {
        let mut tracker = self.unloaded.lock();
        let Some(pending) = tracker.as_mut() else {
            return Ok(());
        };
        let span = PageVector::page_span(offset, len.max(1));
        let mut remaining_elsewhere = false;
        for page in span {
            if pending[page] {
                let page_off = page as u64 * PAGE_SIZE;
                let page_len = PAGE_SIZE.min(self.len - page_off) as usize;
                let mut buf = vec![0u8; page_len];
                self.fetch_page_verified(page, &mut buf)?;
                let _guard = self.mem_lock.write();
                // SAFETY: exclusive lock held; bounds derived from the
                // region length.
                unsafe { self.mem.copy_in(page_off as usize, &buf) }?;
                pending[page] = false;
            }
        }
        for &p in pending.iter() {
            if p {
                remaining_elsewhere = true;
                break;
            }
        }
        if !remaining_elsewhere {
            *tracker = None;
        }
        Ok(())
    }

    /// Reads bytes with the shared lock held (library-internal).
    pub(crate) fn read_bytes(&self, offset: u64, len: u64) -> Vec<u8> {
        let _guard = self.mem_lock.read();
        let mut buf = vec![0u8; len as usize];
        // SAFETY: shared lock held; caller validated bounds.
        unsafe { self.mem.copy_out(offset as usize, &mut buf) }
            .expect("read_bytes callers validate bounds");
        buf
    }

    /// Writes bytes with the exclusive lock held (library-internal; used
    /// by abort to restore old values).
    pub(crate) fn write_bytes(&self, offset: u64, data: &[u8]) {
        let _guard = self.mem_lock.write();
        // SAFETY: exclusive lock held; caller validated bounds.
        unsafe { self.mem.copy_in(offset as usize, data) }
            .expect("write_bytes callers validate bounds");
    }
}

/// A handle to a mapped region of recoverable memory.
///
/// Handles are cheap to clone; the region stays mapped until
/// [`Rvm::unmap`](crate::Rvm::unmap). Operations on an unmapped region
/// fail with [`RvmError::Unmapped`].
#[derive(Clone)]
pub struct Region {
    pub(crate) inner: Arc<RegionInner>,
}

impl Region {
    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.inner.len
    }

    /// Regions are never empty; provided for completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Name of the backing segment.
    pub fn segment_name(&self) -> &str {
        &self.inner.seg_name
    }

    /// Offset of this region within its segment.
    pub fn segment_offset(&self) -> u64 {
        self.inner.seg_offset
    }

    /// Returns `true` while the region is mapped.
    pub fn is_mapped(&self) -> bool {
        self.inner.mapped.load(Ordering::Acquire)
    }

    /// Number of transactions with uncommitted changes to this region —
    /// the paper's `query` information.
    pub fn uncommitted_transactions(&self) -> u64 {
        self.inner.uncommitted_txns.load(Ordering::Acquire)
    }

    /// Number of pages tracked by the region's page vector.
    pub fn num_pages(&self) -> usize {
        self.inner.page_vector.lock().num_pages()
    }

    /// Indices of pages holding committed changes not yet applied to the
    /// external data segment (Figure 7's dirty bits).
    pub fn dirty_pages(&self) -> Vec<usize> {
        self.inner.page_vector.lock().dirty_pages().collect()
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// Reads require no RVM intervention beyond bounds checks (§4.2)
    /// (plus a first-touch fetch for on-demand regions).
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.check_mapped()?;
        self.inner.check_bounds(offset, buf.len() as u64)?;
        self.inner.ensure_loaded(offset, buf.len() as u64)?;
        let _guard = self.inner.mem_lock.read();
        // SAFETY: shared lock held and bounds checked above.
        unsafe { self.inner.mem.copy_out(offset as usize, buf) }?;
        Ok(())
    }

    /// Reads `len` bytes starting at `offset` into a fresh vector.
    pub fn read_vec(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.inner.check_mapped()?;
        self.inner.check_bounds(offset, len)?;
        self.inner.ensure_loaded(offset, len)?;
        Ok(self.inner.read_bytes(offset, len))
    }

    /// Fetches `[offset, offset + len)` from the segment if not yet
    /// loaded (on-demand regions); a no-op otherwise. Useful to warm a
    /// region before using the pointer API.
    pub fn prefetch(&self, offset: u64, len: u64) -> Result<()> {
        self.inner.check_mapped()?;
        self.inner.check_bounds(offset, len)?;
        self.inner.ensure_loaded(offset, len)
    }

    /// Returns `true` once the whole region holds its committed image.
    pub fn is_fully_loaded(&self) -> bool {
        self.inner.unloaded.lock().is_none()
    }

    /// Reads a little-endian `u32` at `offset`.
    pub fn get_u32(&self, offset: u64) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read(offset, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64` at `offset`.
    pub fn get_u64(&self, offset: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Transactionally writes `data` at `offset`: declares the range to
    /// `txn` (an implicit `set_range`) and updates memory.
    pub fn write(&self, txn: &mut Transaction, offset: u64, data: &[u8]) -> Result<()> {
        txn.set_range(self, offset, data.len() as u64)?;
        let _guard = self.inner.mem_lock.write();
        // SAFETY: exclusive lock held; set_range validated the bounds.
        unsafe { self.inner.mem.copy_in(offset as usize, data) }?;
        Ok(())
    }

    /// Transactionally writes a little-endian `u32`.
    pub fn put_u32(&self, txn: &mut Transaction, offset: u64, v: u32) -> Result<()> {
        self.write(txn, offset, &v.to_le_bytes())
    }

    /// Transactionally writes a little-endian `u64`.
    pub fn put_u64(&self, txn: &mut Transaction, offset: u64, v: u64) -> Result<()> {
        self.write(txn, offset, &v.to_le_bytes())
    }

    /// Declares `[offset, offset + len)` to `txn` and passes the bytes to
    /// `f` for in-place modification.
    pub fn modify<R>(
        &self,
        txn: &mut Transaction,
        offset: u64,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        txn.set_range(self, offset, len)?;
        let _guard = self.inner.mem_lock.write();
        // SAFETY: exclusive lock held; set_range validated the bounds.
        let slice = unsafe { self.inner.mem.slice_mut(offset as usize, len as usize) }?;
        Ok(f(slice))
    }

    /// Base address of the region's memory block, for the C-style
    /// pointer API.
    ///
    /// The block is stable while the region is mapped. All mutation
    /// through this pointer must be covered by
    /// [`Transaction::set_range_ptr`](crate::Transaction::set_range_ptr)
    /// calls — "the result is disastrous" otherwise, exactly as §6 warns —
    /// and the caller takes over synchronization entirely.
    pub fn base_ptr(&self) -> *mut u8 {
        self.inner.mem.as_ptr()
    }

    /// Translates a pointer into this region to its byte offset, if it
    /// points inside the region.
    pub fn offset_of_ptr(&self, ptr: *const u8) -> Option<u64> {
        let base = self.inner.mem.as_ptr() as usize;
        let p = ptr as usize;
        if p >= base && p < base + self.inner.len as usize {
            Some((p - base) as u64)
        } else {
            None
        }
    }
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Region")
            .field("segment", &self.inner.seg_name)
            .field("seg_offset", &self.inner.seg_offset)
            .field("len", &self.inner.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use rvm_storage::MemDevice;

    /// Builds a standalone mapped region over a fresh in-memory segment,
    /// for unit tests of components that need a `RegionInner`.
    pub(crate) fn make_test_region(len: u64) -> Arc<RegionInner> {
        use std::sync::atomic::AtomicU64 as Counter;
        static NEXT_ID: Counter = Counter::new(1);
        Arc::new(RegionInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            seg: SegmentId::new(0),
            seg_name: "test-segment".to_owned(),
            seg_dev: Arc::new(MemDevice::with_len(len)),
            seg_offset: 0,
            len,
            mem: RegionMemory::alloc(len as usize),
            mem_lock: RwLock::new(()),
            mapped: AtomicBool::new(true),
            uncommitted_txns: AtomicU64::new(0),
            page_vector: Mutex::new(PageVector::new(len)),
            unloaded: Mutex::new(None),
            catalog: None,
            degraded: AtomicBool::new(false),
            media: Arc::new(MediaCounters::default()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_validation() {
        assert!(RegionDescriptor::new("s", 0, PAGE_SIZE).validate().is_ok());
        assert!(RegionDescriptor::new("s", PAGE_SIZE * 3, PAGE_SIZE * 2)
            .validate()
            .is_ok());
        assert!(RegionDescriptor::new("s", 0, 0).validate().is_err());
        assert!(RegionDescriptor::new("s", 0, 100).validate().is_err());
        assert!(RegionDescriptor::new("s", 100, PAGE_SIZE)
            .validate()
            .is_err());
    }

    #[test]
    fn memory_alloc_is_zeroed_and_aligned() {
        let mem = RegionMemory::alloc(PAGE_SIZE as usize * 2);
        assert_eq!(mem.as_ptr() as usize % PAGE_SIZE as usize, 0);
        let mut buf = vec![0xFFu8; PAGE_SIZE as usize * 2];
        // SAFETY: sole owner, bounds exact.
        unsafe { mem.copy_out(0, &mut buf) }.unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn memory_copy_round_trip() {
        let mem = RegionMemory::alloc(PAGE_SIZE as usize);
        // SAFETY: sole owner, bounds checked by construction.
        unsafe {
            mem.copy_in(100, &[1, 2, 3]).unwrap();
            let mut buf = [0u8; 3];
            mem.copy_out(100, &mut buf).unwrap();
            assert_eq!(buf, [1, 2, 3]);
            let slice = mem.slice_mut(100, 3).unwrap();
            slice[1] = 9;
            let mut buf = [0u8; 3];
            mem.copy_out(100, &mut buf).unwrap();
            assert_eq!(buf, [1, 9, 3]);
        }
    }

    #[test]
    fn memory_bounds_are_checked_in_all_builds() {
        let mem = RegionMemory::alloc(PAGE_SIZE as usize);
        let mut buf = [0u8; 8];
        // SAFETY: sole owner; the point is that bad bounds come back as
        // errors rather than debug-only assertions.
        unsafe {
            assert!(matches!(
                mem.copy_out(PAGE_SIZE as usize - 4, &mut buf),
                Err(RvmError::OutOfRange { .. })
            ));
            assert!(matches!(
                mem.copy_in(PAGE_SIZE as usize, &[1]),
                Err(RvmError::OutOfRange { .. })
            ));
            assert!(matches!(
                mem.slice_mut(usize::MAX, 2),
                Err(RvmError::OutOfRange { .. })
            ));
            // Exactly-at-the-edge accesses remain fine.
            assert!(mem.copy_in(PAGE_SIZE as usize - 1, &[7]).is_ok());
        }
    }
}
