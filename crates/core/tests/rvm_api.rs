//! End-to-end tests of the public RVM API over in-memory devices.

use std::sync::Arc;

use rvm::segment::MemResolver;
use rvm::{
    CommitMode, Options, RegionDescriptor, Rvm, RvmError, TruncationMode, Tuning, TxnMode,
    PAGE_SIZE,
};
use rvm_storage::{Device, MemDevice};

/// A small self-contained world: one log device + one segment resolver,
/// both shared across "reboots".
struct World {
    log: Arc<MemDevice>,
    segments: MemResolver,
}

impl World {
    fn new(log_len: u64) -> Self {
        Self {
            log: Arc::new(MemDevice::with_len(log_len)),
            segments: MemResolver::new(),
        }
    }

    fn options(&self) -> Options {
        Options::new(self.log.clone())
            .resolver(self.segments.clone().into_resolver())
            .create_if_empty()
    }

    fn boot(&self) -> Rvm {
        Rvm::initialize(self.options()).expect("initialize")
    }

    fn boot_tuned(&self, tuning: Tuning) -> Rvm {
        Rvm::initialize(self.options().tuning(tuning)).expect("initialize")
    }
}

#[test]
fn committed_data_survives_a_reboot() {
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 10, b"durable").unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        // Simulated crash: drop without terminate (Drop flushes, but the
        // flush-mode commit was already forced; stronger crash tests live
        // in the workspace-level suite with FaultDevice).
    }
    let rvm = world.boot();
    assert_eq!(rvm.recovery_report().records_replayed, 1);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(region.read_vec(10, 7).unwrap(), b"durable");
}

#[test]
fn abort_restores_old_values() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[7; 64]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[9; 64]).unwrap();
    region.write(&mut txn, 100, &[9; 8]).unwrap();
    assert_eq!(region.read_vec(0, 4).unwrap(), vec![9; 4]);
    txn.abort().unwrap();
    assert_eq!(region.read_vec(0, 64).unwrap(), vec![7; 64]);
    assert_eq!(region.read_vec(100, 8).unwrap(), vec![0; 8]);
    assert_eq!(rvm.stats().txns_aborted, 1);
}

#[test]
fn dropping_a_transaction_aborts_it() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 0, &[5; 16]).unwrap();
    }
    assert_eq!(region.read_vec(0, 16).unwrap(), vec![0; 16]);
    assert_eq!(rvm.query().active_transactions, 0);
    assert_eq!(region.uncommitted_transactions(), 0);
}

#[test]
fn no_restore_transactions_cannot_abort() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::NoRestore).unwrap();
    region.write(&mut txn, 0, &[1; 8]).unwrap();
    let err = txn.abort().unwrap_err();
    assert!(matches!(err, RvmError::CannotAbortNoRestore));
    // Memory keeps the modification (it cannot be undone)...
    assert_eq!(region.read_vec(0, 8).unwrap(), vec![1; 8]);
    // ...but the bookkeeping is released.
    assert_eq!(region.uncommitted_transactions(), 0);
}

#[test]
fn no_flush_commits_are_lost_on_crash_without_flush() {
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 0, b"lazy").unwrap();
        txn.commit(CommitMode::NoFlush).unwrap();
        assert_eq!(rvm.query().spooled_transactions, 1);
        // Hard crash: forget the instance entirely so Drop cannot flush.
        std::mem::forget(rvm);
    }
    let rvm = world.boot();
    assert_eq!(rvm.recovery_report().records_replayed, 0);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(region.read_vec(0, 4).unwrap(), vec![0; 4]);
}

#[test]
fn flush_bounds_the_persistence_of_no_flush_commits() {
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        for i in 0..5u8 {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.write(&mut txn, i as u64 * 8, &[i + 1; 8]).unwrap();
            txn.commit(CommitMode::NoFlush).unwrap();
        }
        rvm.flush().unwrap();
        assert_eq!(rvm.query().spooled_transactions, 0);
        std::mem::forget(rvm);
    }
    let rvm = world.boot();
    assert_eq!(rvm.recovery_report().records_replayed, 5);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    for i in 0..5u8 {
        assert_eq!(region.read_vec(i as u64 * 8, 8).unwrap(), vec![i + 1; 8]);
    }
}

#[test]
fn truncate_applies_the_log_to_segments() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[3; 128]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    assert!(rvm.query().log.used > 0);

    rvm.truncate().unwrap();
    assert_eq!(rvm.query().log.used, 0);
    assert_eq!(rvm.stats().epoch_truncations, 1);

    let seg = world.segments.get("seg").unwrap();
    let mut buf = [0u8; 128];
    seg.read_at(0, &mut buf).unwrap();
    assert_eq!(buf, [3; 128]);
}

#[test]
fn sustained_commits_wrap_the_log_via_inline_truncation() {
    // Log area of ~14 KiB; each commit writes ~1 KiB of data.
    let world = World::new(30 * 1024);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE))
        .unwrap();
    for round in 0..100u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let off = (round % 16) * 1024;
        region.write(&mut txn, off, &[round as u8; 1024]).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    assert!(rvm.stats().epoch_truncations > 0, "threshold must trigger");
    // Final state: offsets written in the last full cycle hold their data.
    for round in 84..100u64 {
        let off = (round % 16) * 1024;
        assert_eq!(
            region.read_vec(off, 4).unwrap(),
            vec![round as u8; 4],
            "round {round}"
        );
    }
    // And it all survives a reboot.
    drop(rvm);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE))
        .unwrap();
    for round in 84..100u64 {
        let off = (round % 16) * 1024;
        assert_eq!(region.read_vec(off, 4).unwrap(), vec![round as u8; 4]);
    }
}

#[test]
fn incremental_truncation_advances_the_head() {
    let world = World::new(64 * 1024);
    let tuning = Tuning {
        truncation_mode: TruncationMode::Incremental,
        truncation_threshold: 0.2,
        incremental_reclaim_bytes: 8 * 1024,
        ..Tuning::default()
    };
    let rvm = world.boot_tuned(tuning);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 8 * PAGE_SIZE))
        .unwrap();
    for round in 0..60u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let off = (round % 8) * PAGE_SIZE;
        region.write(&mut txn, off, &[round as u8; 512]).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    let stats = rvm.stats();
    assert!(
        stats.pages_written_incremental > 0,
        "incremental steps must have run: {stats:?}"
    );
    drop(rvm);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 8 * PAGE_SIZE))
        .unwrap();
    for round in 52..60u64 {
        let off = (round % 8) * PAGE_SIZE;
        assert_eq!(region.read_vec(off, 4).unwrap(), vec![round as u8; 4]);
    }
}

#[test]
fn incremental_truncation_blocks_on_uncommitted_pages() {
    let world = World::new(64 * 1024);
    let tuning = Tuning {
        truncation_mode: TruncationMode::Incremental,
        truncation_threshold: 0.05,
        incremental_reclaim_bytes: u64::MAX,
        ..Tuning::default()
    };
    let rvm = world.boot_tuned(tuning);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 2 * PAGE_SIZE))
        .unwrap();

    // A long-running transaction pins page 0.
    let mut long_txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    long_txn.set_range(&region, 0, 16).unwrap();

    // Other commits to page 0 pile up in the log; truncation cannot write
    // page 0 while the long transaction holds a reference.
    for i in 0..4u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 100 + i * 16, &[1; 16]).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    assert!(rvm.query().log.used > 0, "head must be blocked");

    long_txn.commit(CommitMode::Flush).unwrap();
    rvm.truncate().unwrap();
    assert_eq!(rvm.query().log.used, 0);
}

#[test]
fn optimization_statistics_track_savings() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();

    // Intra: the same range declared three times logs once.
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    for _ in 0..3 {
        txn.set_range(&region, 0, 100).unwrap();
    }
    region.write(&mut txn, 0, &[1; 100]).unwrap(); // a 4th declaration
    txn.commit(CommitMode::Flush).unwrap();
    let stats = rvm.stats();
    assert_eq!(stats.bytes_set_range_gross, 400);
    assert_eq!(stats.bytes_saved_intra, 300);

    // Inter: two no-flush commits of the same range keep only the newest.
    for val in [2u8, 3u8] {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 200, &[val; 50]).unwrap();
        txn.commit(CommitMode::NoFlush).unwrap();
    }
    let stats = rvm.stats();
    assert!(stats.bytes_saved_inter > 0);
    rvm.flush().unwrap();
    assert_eq!(region.read_vec(200, 4).unwrap(), vec![3; 4]);
}

#[test]
fn optimizations_can_be_disabled() {
    let world = World::new(1 << 20);
    let tuning = Tuning {
        intra_optimization: false,
        inter_optimization: false,
        ..Tuning::default()
    };
    let rvm = world.boot_tuned(tuning);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    txn.set_range(&region, 0, 100).unwrap();
    txn.set_range(&region, 0, 100).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    let stats = rvm.stats();
    assert_eq!(stats.bytes_saved_intra, 0);
    // Both duplicate declarations were logged: 2 range entries * (24 + 100)
    // plus header/trailer.
    assert!(stats.bytes_logged >= 2 * 124);
}

#[test]
fn mapping_rules_are_enforced() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let _a = rvm
        .map(&RegionDescriptor::new("seg", 0, 2 * PAGE_SIZE))
        .unwrap();
    // Overlap and duplicate mappings are rejected (§4.1).
    assert!(matches!(
        rvm.map(&RegionDescriptor::new("seg", 0, 2 * PAGE_SIZE)),
        Err(RvmError::BadMapping(_))
    ));
    assert!(matches!(
        rvm.map(&RegionDescriptor::new("seg", PAGE_SIZE, PAGE_SIZE)),
        Err(RvmError::BadMapping(_))
    ));
    // A disjoint region of the same segment is fine.
    let _b = rvm
        .map(&RegionDescriptor::new("seg", 2 * PAGE_SIZE, PAGE_SIZE))
        .unwrap();
    // Alignment is enforced.
    assert!(matches!(
        rvm.map(&RegionDescriptor::new("seg2", 0, 100)),
        Err(RvmError::BadMapping(_))
    ));
}

#[test]
fn unmap_requires_quiescence_and_remap_sees_committed_state() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[8; 32]).unwrap();
    assert!(matches!(
        rvm.unmap(&region),
        Err(RvmError::RegionBusy { uncommitted: 1 })
    ));
    txn.commit(CommitMode::Flush).unwrap();

    rvm.unmap(&region).unwrap();
    assert!(!region.is_mapped());
    assert!(matches!(region.read_vec(0, 4), Err(RvmError::Unmapped)));

    // Remap: the committed (but never truncated) data must be visible.
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(region.read_vec(0, 32).unwrap(), vec![8; 32]);
}

#[test]
fn remap_sees_spooled_no_flush_state() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[4; 16]).unwrap();
    txn.commit(CommitMode::NoFlush).unwrap();
    rvm.unmap(&region).unwrap();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(region.read_vec(0, 16).unwrap(), vec![4; 16]);
}

#[test]
fn pointer_api_round_trips() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let base = region.base_ptr();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    // SAFETY: single-threaded test; the pointer stays within the region.
    unsafe {
        let p = base.add(64);
        txn.set_range_ptr(&region, p, 8).unwrap();
        std::ptr::copy_nonoverlapping(b"ptr-api!".as_ptr(), p, 8);
    }
    txn.commit(CommitMode::Flush).unwrap();
    assert_eq!(region.read_vec(64, 8).unwrap(), b"ptr-api!");

    // A pointer outside the region is rejected.
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    let bogus = [0u8; 1];
    assert!(txn.set_range_ptr(&region, bogus.as_ptr(), 1).is_err());
}

#[test]
fn bounds_are_enforced() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    assert!(matches!(
        txn.set_range(&region, PAGE_SIZE - 4, 8),
        Err(RvmError::OutOfRange { .. })
    ));
    assert!(region.read_vec(PAGE_SIZE, 1).is_err());
    txn.commit(CommitMode::Flush).unwrap();
}

#[test]
fn zero_length_declarations_are_rejected_at_both_entry_points() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    assert!(matches!(
        txn.set_range(&region, 40, 0),
        Err(RvmError::EmptyRange { offset: 40 })
    ));
    // SAFETY: base + 40 is within the mapped region.
    let ptr = unsafe { region.base_ptr().add(40) };
    assert!(matches!(
        txn.set_range_ptr(&region, ptr, 0),
        Err(RvmError::EmptyRange { offset: 40 })
    ));
    // The emptiness check fires first, even off the end of the region.
    assert!(matches!(
        txn.set_range(&region, PAGE_SIZE + 1, 0),
        Err(RvmError::EmptyRange { .. })
    ));
    // Nothing was declared, so the commit logs nothing.
    txn.commit(CommitMode::Flush).unwrap();
    assert_eq!(rvm.query().stats.bytes_set_range_gross, 0);
}

#[test]
fn no_restore_abort_error_still_releases_the_transaction() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    // §4.2: abort of a no-restore transaction is an error by contract —
    // memory cannot be rewound. The error must not leak bookkeeping:
    // a later transaction and termination proceed normally.
    let mut txn = rvm.begin_transaction(TxnMode::NoRestore).unwrap();
    region.write(&mut txn, 0, &[0xAA; 16]).unwrap();
    assert!(matches!(txn.abort(), Err(RvmError::CannotAbortNoRestore)));
    assert_eq!(region.uncommitted_transactions(), 0);

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[0xBB; 16]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    assert_eq!(region.read_vec(0, 16).unwrap(), vec![0xBB; 16]);
    rvm.terminate().unwrap();
}

#[test]
fn multi_region_transactions_commit_atomically() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let a = rvm
        .map(&RegionDescriptor::new("segA", 0, PAGE_SIZE))
        .unwrap();
    let b = rvm
        .map(&RegionDescriptor::new("segB", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    a.write(&mut txn, 0, &[1; 8]).unwrap();
    b.write(&mut txn, 0, &[2; 8]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    drop(rvm);

    let rvm = world.boot();
    assert_eq!(rvm.recovery_report().segments_updated, 2);
    let a = rvm
        .map(&RegionDescriptor::new("segA", 0, PAGE_SIZE))
        .unwrap();
    let b = rvm
        .map(&RegionDescriptor::new("segB", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(a.read_vec(0, 8).unwrap(), vec![1; 8]);
    assert_eq!(b.read_vec(0, 8).unwrap(), vec![2; 8]);
}

#[test]
fn terminate_rejects_outstanding_transactions_and_returns_the_instance() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[1]).unwrap();

    // A refused terminate hands the instance back instead of leaking it
    // into a drop; the caller can finish the transaction and retry.
    let failure = rvm.terminate().expect_err("an open txn must refuse");
    assert!(matches!(
        failure.error,
        RvmError::TransactionsOutstanding(1)
    ));
    let rvm = failure.rvm;
    txn.commit(CommitMode::Flush).unwrap();
    assert_eq!(region.read_vec(0, 1).unwrap(), vec![1]);
    rvm.terminate().unwrap();

    // The commit survived the failed first attempt.
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(region.read_vec(0, 1).unwrap(), vec![1]);
}

#[test]
fn terminate_flushes_the_spool() {
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 0, b"clean").unwrap();
        txn.commit(CommitMode::NoFlush).unwrap();
        rvm.terminate().unwrap();
    }
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(region.read_vec(0, 5).unwrap(), b"clean");
}

#[test]
fn background_truncation_reclaims_space() {
    let world = World::new(64 * 1024);
    let tuning = Tuning {
        background_truncation: true,
        truncation_threshold: 0.3,
        ..Tuning::default()
    };
    let rvm = world.boot_tuned(tuning);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    for i in 0..40u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region
            .write(&mut txn, (i % 4) * 512, &[i as u8; 512])
            .unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    // Give the background thread a moment.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while rvm.stats().epoch_truncations == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(rvm.stats().epoch_truncations > 0);
    rvm.terminate().unwrap();
}

#[test]
fn query_reports_consistent_state() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let q0 = rvm.query();
    assert_eq!(q0.mapped_regions, 1);
    assert_eq!(q0.log.used, 0);

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[1; 8]).unwrap();
    assert_eq!(rvm.query().active_transactions, 1);
    txn.commit(CommitMode::NoFlush).unwrap();

    let q = rvm.query();
    assert_eq!(q.active_transactions, 0);
    assert_eq!(q.spooled_transactions, 1);
    assert!(q.spool_bytes > 0);
    assert_eq!(q.stats.no_flush_commits, 1);
}

#[test]
fn operations_fail_after_terminate_marker() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    drop(rvm);
    // The region handle outlives the instance; reads still work (memory is
    // alive) but the mapping is simply stale — no UB, no panic.
    let _ = region.read_vec(0, 4).unwrap();
}

#[test]
fn empty_transactions_commit_without_logging() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    let stats = rvm.stats();
    assert_eq!(stats.txns_committed, 1);
    assert_eq!(stats.bytes_logged, 0);
    assert_eq!(rvm.query().log.used, 0);
}

#[test]
fn large_transactions_spanning_many_pages_recover() {
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, 16 * PAGE_SIZE))
            .unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let blob: Vec<u8> = (0..10 * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        region.write(&mut txn, PAGE_SIZE, &blob).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        std::mem::forget(rvm);
    }
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 16 * PAGE_SIZE))
        .unwrap();
    let got = region.read_vec(PAGE_SIZE, 10 * PAGE_SIZE).unwrap();
    assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
}

#[test]
fn oversized_transaction_reports_log_full() {
    let world = World::new(LOG_OVERHEAD + 8 * 1024);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &vec![1u8; 12 * 1024]).unwrap();
    assert!(matches!(
        txn.commit(CommitMode::Flush),
        Err(RvmError::LogFull { .. })
    ));
}

/// Status blocks take the first 16 KiB of the log device.
const LOG_OVERHEAD: u64 = 16 * 1024;

#[test]
fn empty_flush_commit_drains_the_spool() {
    // A flush-mode commit promises everything committed before it is
    // durable — *including* spooled no-flush commits — even when the
    // flush-mode transaction itself logged nothing. Regression test: the
    // empty-commit fast path used to skip the spool drain entirely,
    // silently weakening the guarantee.
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 0, b"spooled payload").unwrap();
        txn.commit(CommitMode::NoFlush).unwrap();
        assert_eq!(rvm.query().spooled_transactions, 1);

        // An empty transaction committed in flush mode: no ranges, but
        // the spool must hit the log before commit returns.
        let txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        let q = rvm.query();
        assert_eq!(q.spooled_transactions, 0, "spool not drained");
        assert!(q.stats.log_forces >= 1);
        std::mem::forget(rvm); // crash: only the log survives
    }
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(
        region.read_vec(0, 15).unwrap(),
        b"spooled payload",
        "no-flush commit was not durable after an empty flush commit"
    );
}

mod on_demand {
    use super::*;
    use rvm::LoadPolicy;

    #[test]
    fn on_demand_region_reads_the_committed_image_lazily() {
        let world = World::new(1 << 20);
        // First incarnation persists some data and truncates it into the
        // segment.
        {
            let rvm = world.boot();
            let region = rvm
                .map(&RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE))
                .unwrap();
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.write(&mut txn, 0, b"page zero").unwrap();
            region
                .write(&mut txn, 3 * PAGE_SIZE + 5, b"page three")
                .unwrap();
            txn.commit(CommitMode::Flush).unwrap();
            rvm.terminate().unwrap();
        }
        let rvm = world.boot();
        let region = rvm
            .map_with(
                &RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE),
                LoadPolicy::OnDemand,
            )
            .unwrap();
        assert!(!region.is_fully_loaded());
        assert_eq!(region.read_vec(0, 9).unwrap(), b"page zero");
        assert_eq!(
            region.read_vec(3 * PAGE_SIZE + 5, 10).unwrap(),
            b"page three"
        );
        assert!(!region.is_fully_loaded(), "pages 1-2 still pending");
        region.prefetch(0, 4 * PAGE_SIZE).unwrap();
        assert!(region.is_fully_loaded());
    }

    #[test]
    fn on_demand_transactions_capture_correct_old_values() {
        let world = World::new(1 << 20);
        {
            let rvm = world.boot();
            let region = rvm
                .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
                .unwrap();
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.write(&mut txn, 100, &[7; 32]).unwrap();
            txn.commit(CommitMode::Flush).unwrap();
            rvm.terminate().unwrap();
        }
        let rvm = world.boot();
        let region = rvm
            .map_with(
                &RegionDescriptor::new("seg", 0, PAGE_SIZE),
                LoadPolicy::OnDemand,
            )
            .unwrap();
        // The very first touch is a transactional write: the old-value
        // capture must see the *committed* image, not zeros.
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 100, &[9; 32]).unwrap();
        txn.abort().unwrap();
        assert_eq!(region.read_vec(100, 32).unwrap(), vec![7; 32]);
    }

    #[test]
    fn on_demand_commit_and_recovery_round_trip() {
        let world = World::new(1 << 20);
        {
            let rvm = world.boot();
            let region = rvm
                .map_with(
                    &RegionDescriptor::new("seg", 0, 2 * PAGE_SIZE),
                    LoadPolicy::OnDemand,
                )
                .unwrap();
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region
                .write(&mut txn, PAGE_SIZE + 10, b"lazy but durable")
                .unwrap();
            txn.commit(CommitMode::Flush).unwrap();
            std::mem::forget(rvm);
        }
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, 2 * PAGE_SIZE))
            .unwrap();
        assert_eq!(
            region.read_vec(PAGE_SIZE + 10, 16).unwrap(),
            b"lazy but durable"
        );
    }

    #[test]
    fn eager_regions_report_fully_loaded() {
        let world = World::new(1 << 20);
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        assert!(region.is_fully_loaded());
        region.prefetch(0, PAGE_SIZE).unwrap();
    }
}
