//! The circular log writer and its scanners.
//!
//! The record area behaves like the paper's Figure 6: a circular buffer in
//! which `head` chases `tail`. Offsets are *logical* (monotone u64); the
//! physical position is `LOG_AREA_START + logical % area_len`. Records
//! never straddle the physical end of the area — a pad record fills the
//! remainder of a lap when the next record would not fit — so every record
//! is contiguous on the device.
//!
//! Because records carry both a forward length (header) and a backward
//! length (trailer), the log can be read in either direction, matching the
//! bidirectional displacements of Figure 5. Recovery uses the forward scan
//! to locate the true tail (the first invalid record or sequence gap) and
//! then processes records newest-first; the backward scan backs the
//! post-mortem inspection tool.

use std::sync::Arc;

use rvm_storage::{Device, IoToken};

use crate::error::{Result, RvmError};
use crate::log::record::{
    self, encode_pad, encode_txn, parse_header, parse_record, RecordRange, TxnRecord, HEADER_SIZE,
    LOG_BLOCK, MIN_RECORD_SIZE, TRAILER_SIZE,
};
use crate::log::status::LOG_AREA_START;

/// Result of appending one transaction record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendInfo {
    /// Logical offset of the record's first byte.
    pub offset: u64,
    /// Sequence number assigned to the record.
    pub seq: u64,
    /// Unpadded record bytes (header + payload + trailer), the quantity
    /// Table 2 reports as "bytes written to log".
    pub record_bytes: u64,
    /// Log space consumed, padding and any pad record included.
    pub space_consumed: u64,
}

/// Staging memory for pipelined appends: encoded record bytes accumulated
/// in RAM, addressed by *physical* device offset, instead of being written
/// to the device one record at a time.
///
/// Contiguous appends coalesce into one chunk, so a whole group-commit
/// batch typically submits as a single device write (two when a pad
/// record wraps the lap: the pad fills the old lap's physical end while
/// the record restarts at the area's physical start). The buffer is
/// reusable — `clear` keeps chunk allocations for the next batch, which
/// is what makes double-buffering cheap.
#[derive(Debug, Default)]
pub struct StagingBuf {
    /// `(physical offset, bytes)`, in append order.
    chunks: Vec<(u64, Vec<u8>)>,
}

impl StagingBuf {
    /// An empty staging buffer.
    pub fn new() -> Self {
        StagingBuf::default()
    }

    /// Drops staged bytes but keeps allocations for reuse.
    pub fn clear(&mut self) {
        self.chunks.clear();
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total staged payload bytes.
    pub fn bytes(&self) -> u64 {
        self.chunks.iter().map(|(_, b)| b.len() as u64).sum()
    }

    /// The staged `(physical offset, bytes)` chunks, append order.
    pub fn chunks(&self) -> &[(u64, Vec<u8>)] {
        &self.chunks
    }

    fn push(&mut self, phys: u64, data: &[u8]) {
        if let Some((off, buf)) = self.chunks.last_mut() {
            if *off + buf.len() as u64 == phys {
                buf.extend_from_slice(data);
                return;
            }
        }
        self.chunks.push((phys, data.to_vec()));
    }
}

/// A snapshot of the append cursors, taken before a group-commit batch so
/// a failed shared force can roll the whole group back at once (the
/// multi-record extension of the single-append restore in
/// [`Wal::append_txn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalCheckpoint {
    tail: u64,
    next_seq: u64,
}

impl WalCheckpoint {
    /// Logical tail at the time of the snapshot.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Next sequence number at the time of the snapshot.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// The circular log writer.
pub struct Wal {
    dev: Arc<dyn Device>,
    area_len: u64,
    head: u64,
    tail: u64,
    next_seq: u64,
    seq_at_head: u64,
}

impl Wal {
    /// Creates a writer over `dev` with geometry and positions from the
    /// status block / recovery.
    pub fn new(
        dev: Arc<dyn Device>,
        area_len: u64,
        head: u64,
        tail: u64,
        seq_at_head: u64,
        next_seq: u64,
    ) -> Self {
        debug_assert!(head <= tail && tail - head <= area_len);
        Self {
            dev,
            area_len,
            head,
            tail,
            next_seq,
            seq_at_head,
        }
    }

    /// Logical offset of the oldest live record.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Logical offset one past the newest record.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Sequence number expected at `head`.
    pub fn seq_at_head(&self) -> u64 {
        self.seq_at_head
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes of live log.
    pub fn used(&self) -> u64 {
        self.tail - self.head
    }

    /// Total record-area capacity.
    pub fn capacity(&self) -> u64 {
        self.area_len
    }

    /// Free space available for appends.
    pub fn free_space(&self) -> u64 {
        self.area_len - self.used()
    }

    /// Utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.used() as f64 / self.area_len as f64
    }

    /// The log device.
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.dev
    }

    fn phys(&self, logical: u64) -> u64 {
        LOG_AREA_START + logical % self.area_len
    }

    /// Space an append of a record with the given padded size would
    /// consume, including a pad record if the record would not fit in the
    /// current lap.
    pub fn space_needed(&self, padded_size: u64) -> u64 {
        let lap_remaining = self.area_len - self.tail % self.area_len;
        if padded_size <= lap_remaining {
            padded_size
        } else {
            padded_size + lap_remaining
        }
    }

    /// Appends one committed transaction as a single record.
    ///
    /// The caller is responsible for ensuring space (triggering truncation
    /// as needed); if the record cannot fit in the *entire* area the error
    /// is [`RvmError::LogFull`], and if it merely cannot fit right now the
    /// error is [`RvmError::LogFull`] with `capacity` set to the free
    /// space — callers distinguish by comparing against [`Wal::capacity`].
    pub fn append_txn(&mut self, tid: u64, ranges: &[RecordRange]) -> Result<AppendInfo> {
        // A failed append must leave the in-memory cursors exactly where
        // they were: if the pad record persisted but the txn record did
        // not (or either write failed outright), an advanced `tail` /
        // `next_seq` would diverge from what a recovery scan of the
        // durable image accepts. Restoring both makes a failed append
        // harmless — a healed device can simply re-append, rewriting the
        // identical pad bytes.
        let (tail0, seq0) = (self.tail, self.next_seq);
        let result = self.append_txn_inner(tid, ranges);
        if result.is_err() {
            self.tail = tail0;
            self.next_seq = seq0;
        }
        result
    }

    fn append_txn_inner(&mut self, tid: u64, ranges: &[RecordRange]) -> Result<AppendInfo> {
        let padded = record::txn_record_size(ranges.iter().map(|r| r.data.len() as u64));
        if padded > self.area_len {
            return Err(RvmError::LogFull {
                needed: padded,
                capacity: self.area_len,
            });
        }
        let need = self.space_needed(padded);
        if need > self.free_space() {
            return Err(RvmError::LogFull {
                needed: need,
                capacity: self.free_space(),
            });
        }

        // Pad out the current lap if the record will not fit in it.
        let lap_remaining = self.area_len - self.tail % self.area_len;
        if padded > lap_remaining {
            debug_assert!(lap_remaining >= MIN_RECORD_SIZE);
            let pad = encode_pad(self.next_seq, lap_remaining);
            self.dev.write_at(self.phys(self.tail), &pad)?;
            self.next_seq += 1;
            self.tail += lap_remaining;
        }

        let seq = self.next_seq;
        let buf = encode_txn(seq, tid, ranges);
        debug_assert_eq!(buf.len() as u64, padded);
        let offset = self.tail;
        self.dev.write_at(self.phys(offset), &buf)?;
        self.next_seq += 1;
        self.tail += padded;

        let record_bytes = HEADER_SIZE
            + ranges
                .iter()
                .map(|r| record::RANGE_ENTRY_SIZE + r.data.len() as u64)
                .sum::<u64>()
            + TRAILER_SIZE;
        Ok(AppendInfo {
            offset,
            seq,
            record_bytes,
            space_consumed: need,
        })
    }

    /// Appends one committed transaction into `staging` instead of the
    /// device: the cursors advance exactly as [`Wal::append_txn`] would
    /// advance them, but the encoded bytes (pad record included) land in
    /// RAM. The caller later pushes the whole buffer to the device with
    /// [`Wal::submit_staged`] — the fill half of the reserve/fill/submit
    /// pipeline.
    ///
    /// The only possible error is [`RvmError::LogFull`], raised before any
    /// cursor or staging mutation, so a failed staged append needs no
    /// rollback and leaves `staging` untouched.
    pub fn append_txn_staged(
        &mut self,
        tid: u64,
        ranges: &[RecordRange],
        staging: &mut StagingBuf,
    ) -> Result<AppendInfo> {
        let padded = record::txn_record_size(ranges.iter().map(|r| r.data.len() as u64));
        if padded > self.area_len {
            return Err(RvmError::LogFull {
                needed: padded,
                capacity: self.area_len,
            });
        }
        let need = self.space_needed(padded);
        if need > self.free_space() {
            return Err(RvmError::LogFull {
                needed: need,
                capacity: self.free_space(),
            });
        }

        let lap_remaining = self.area_len - self.tail % self.area_len;
        if padded > lap_remaining {
            debug_assert!(lap_remaining >= MIN_RECORD_SIZE);
            let pad = encode_pad(self.next_seq, lap_remaining);
            staging.push(self.phys(self.tail), &pad);
            self.next_seq += 1;
            self.tail += lap_remaining;
        }

        let seq = self.next_seq;
        let buf = encode_txn(seq, tid, ranges);
        debug_assert_eq!(buf.len() as u64, padded);
        let offset = self.tail;
        staging.push(self.phys(offset), &buf);
        self.next_seq += 1;
        self.tail += padded;

        let record_bytes = HEADER_SIZE
            + ranges
                .iter()
                .map(|r| record::RANGE_ENTRY_SIZE + r.data.len() as u64)
                .sum::<u64>()
            + TRAILER_SIZE;
        Ok(AppendInfo {
            offset,
            seq,
            record_bytes,
            space_consumed: need,
        })
    }

    /// Submits every staged chunk as an asynchronous device write,
    /// draining `staging` (its allocations move into the tokens' payloads;
    /// the buffer itself is reusable). The writes are *submitted*, not
    /// durable — the caller must pair them with [`Wal::submit_force`] and
    /// wait both before acknowledging anything.
    pub fn submit_staged(&self, staging: &mut StagingBuf) -> Vec<IoToken> {
        staging
            .chunks
            .drain(..)
            .map(|(off, data)| self.dev.submit_write(off, data))
            .collect()
    }

    /// Submits an asynchronous durability barrier covering every write
    /// submitted before it (the pipelined counterpart of [`Wal::force`]).
    pub fn submit_force(&self) -> IoToken {
        self.dev.submit_sync()
    }

    /// Forces all appended records to stable storage (a "log force").
    pub fn force(&self) -> Result<()> {
        self.dev.sync()?;
        Ok(())
    }

    /// Captures the append cursors ahead of a group of appends.
    pub fn checkpoint(&self) -> WalCheckpoint {
        WalCheckpoint {
            tail: self.tail,
            next_seq: self.next_seq,
        }
    }

    /// Rolls the append cursors back to a [`WalCheckpoint`] after a group
    /// of appends whose shared force failed: none of the group's records
    /// were acknowledged, so the in-memory tail must not claim them. A
    /// healed device can re-append from the checkpoint, rewriting the
    /// identical bytes; a recovery scan of the durable image stops at the
    /// same place because nothing past the checkpoint was forced.
    ///
    /// If truncation ran *between* the checkpoint and the failure (an
    /// append mid-group made space), the head may have advanced past the
    /// checkpointed tail; the records below it were already applied to
    /// their segments and the checkpoint no longer names a valid cursor
    /// state, so the rollback is skipped — callers poison the instance on
    /// this path, which makes the stale cursors unreachable.
    pub fn rollback_to(&mut self, ckpt: WalCheckpoint) {
        debug_assert!(ckpt.tail <= self.tail && ckpt.next_seq <= self.next_seq);
        if self.head <= ckpt.tail {
            self.tail = ckpt.tail;
            self.next_seq = ckpt.next_seq;
        }
    }

    /// Moves the head forward after truncation has applied records below
    /// `new_head` to their segments.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the head would move backward or past the tail.
    pub fn advance_head(&mut self, new_head: u64, new_seq_at_head: u64) {
        debug_assert!(new_head >= self.head && new_head <= self.tail);
        self.head = new_head;
        self.seq_at_head = new_seq_at_head;
    }
}

/// Everything a forward scan learns about the live log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Valid committed transaction records, oldest first, with their
    /// logical offsets.
    pub records: Vec<(u64, TxnRecord)>,
    /// Logical offset one past the last valid record (the true tail).
    pub tail: u64,
    /// Sequence number the next appended record should carry.
    pub next_seq: u64,
    /// Pad records encountered.
    pub pads: u64,
}

/// Scans the record area forward from `head`, stopping at the first
/// invalid record, the first sequence gap, `stop_at`, or after one full
/// lap.
///
/// Device read errors abort the scan with an error; torn or stale records
/// are *expected* and simply terminate it.
pub fn scan_forward(
    dev: &dyn Device,
    area_len: u64,
    head: u64,
    seq_at_head: u64,
    stop_at: Option<u64>,
) -> Result<ScanOutcome> {
    let mut records = Vec::new();
    let mut pads = 0u64;
    let mut pos = head;
    let mut expect = seq_at_head;

    loop {
        if pos - head >= area_len {
            break;
        }
        if let Some(stop) = stop_at {
            if pos >= stop {
                break;
            }
        }
        let lap_remaining = area_len - pos % area_len;
        debug_assert!(lap_remaining >= LOG_BLOCK);

        let mut header_buf = [0u8; HEADER_SIZE as usize];
        dev.read_at(LOG_AREA_START + pos % area_len, &mut header_buf)?;
        let Some(header) = parse_header(&header_buf) else {
            break;
        };
        if header.seq != expect {
            break;
        }
        let padded = header.padded_len();
        if padded > lap_remaining || pos - head + padded > area_len {
            break;
        }
        let mut buf = vec![0u8; padded as usize];
        dev.read_at(LOG_AREA_START + pos % area_len, &mut buf)?;
        let Some((_, decoded)) = parse_record(&buf) else {
            break;
        };
        match decoded {
            Some(txn) => records.push((pos, txn)),
            None => pads += 1,
        }
        pos += padded;
        expect += 1;
    }

    Ok(ScanOutcome {
        records,
        tail: pos,
        next_seq: expect,
        pads,
    })
}

/// Scans the record area backward from `tail` (whose next sequence number
/// is `next_seq`) down to `head`, returning transaction records newest
/// first. This exercises the reverse displacements of Figure 5.
pub fn scan_backward(
    dev: &dyn Device,
    area_len: u64,
    head: u64,
    tail: u64,
    next_seq: u64,
) -> Result<Vec<(u64, TxnRecord)>> {
    let mut records = Vec::new();
    let mut pos = tail;
    let mut expect = next_seq;

    while pos > head {
        expect -= 1;
        let trailer_at = LOG_AREA_START + (pos - TRAILER_SIZE) % area_len;
        let mut trailer_buf = [0u8; TRAILER_SIZE as usize];
        dev.read_at(trailer_at, &mut trailer_buf)?;
        let Some(trailer) = record::parse_trailer(&trailer_buf) else {
            return Err(RvmError::BadLog(format!(
                "invalid trailer at logical offset {pos}"
            )));
        };
        if trailer.seq != expect || trailer.padded_len > pos - head {
            return Err(RvmError::BadLog(format!(
                "inconsistent trailer at logical offset {pos}"
            )));
        }
        let start = pos - trailer.padded_len;
        let mut buf = vec![0u8; trailer.padded_len as usize];
        dev.read_at(LOG_AREA_START + start % area_len, &mut buf)?;
        let Some((_, decoded)) = parse_record(&buf) else {
            return Err(RvmError::BadLog(format!(
                "invalid record at logical offset {start}"
            )));
        };
        if let Some(txn) = decoded {
            records.push((start, txn));
        }
        pos = start;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentId;
    use rvm_storage::MemDevice;

    fn mk_wal(area_len: u64) -> Wal {
        let dev = Arc::new(MemDevice::with_len(LOG_AREA_START + area_len));
        Wal::new(dev, area_len, 0, 0, 1, 1)
    }

    fn range(seg: u32, offset: u64, byte: u8, len: usize) -> RecordRange {
        RecordRange {
            seg: SegmentId::new(seg),
            offset,
            data: vec![byte; len],
        }
    }

    #[test]
    fn append_then_scan_round_trips() {
        let mut wal = mk_wal(1 << 16);
        let a = wal.append_txn(1, &[range(0, 0, 0xAA, 100)]).unwrap();
        let b = wal
            .append_txn(2, &[range(0, 100, 0xBB, 50), range(1, 0, 0xCC, 10)])
            .unwrap();
        wal.force().unwrap();
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 2);
        assert!(b.offset > a.offset);

        let scan = scan_forward(wal.device().as_ref(), wal.capacity(), 0, 1, None).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.tail, wal.tail());
        assert_eq!(scan.next_seq, wal.next_seq());
        assert_eq!(scan.records[0].1.tid, 1);
        assert_eq!(scan.records[1].1.ranges.len(), 2);
        assert_eq!(scan.records[1].1.ranges[1].data, vec![0xCC; 10]);
    }

    #[test]
    fn scan_of_empty_log_finds_nothing() {
        let wal = mk_wal(1 << 14);
        let scan = scan_forward(wal.device().as_ref(), wal.capacity(), 0, 1, None).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.tail, 0);
    }

    #[test]
    fn wraparound_inserts_pad_and_scans_clean() {
        // Area of 8 blocks; records of ~3 blocks force a pad at the lap end.
        let area = 8 * LOG_BLOCK;
        let mut wal = mk_wal(area);
        // Each record: header 40 + entry 24 + 1000 + trailer 24 = 1088 -> 3 blocks.
        let r1 = wal.append_txn(1, &[range(0, 0, 1, 1000)]).unwrap();
        let r2 = wal.append_txn(2, &[range(0, 0, 2, 1000)]).unwrap();
        assert_eq!(r1.space_consumed, 3 * LOG_BLOCK);
        assert_eq!(r2.space_consumed, 3 * LOG_BLOCK);
        // Two blocks remain in the lap; the next record needs a pad first,
        // which does not fit until we truncate.
        assert!(wal.append_txn(3, &[range(0, 0, 3, 1000)]).is_err());
        // Simulate truncation of the first record.
        wal.advance_head(3 * LOG_BLOCK, 2);
        let r3 = wal.append_txn(3, &[range(0, 0, 3, 1000)]).unwrap();
        assert_eq!(r3.space_consumed, 3 * LOG_BLOCK + 2 * LOG_BLOCK);
        assert_eq!(r3.offset, 8 * LOG_BLOCK, "record starts on the next lap");

        let scan = scan_forward(
            wal.device().as_ref(),
            wal.capacity(),
            wal.head(),
            wal.seq_at_head(),
            None,
        )
        .unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.pads, 1);
        assert_eq!(scan.records[0].1.tid, 2);
        assert_eq!(scan.records[1].1.tid, 3);
        assert_eq!(scan.tail, wal.tail());
    }

    #[test]
    fn oversized_record_is_log_full() {
        let mut wal = mk_wal(4 * LOG_BLOCK);
        let err = wal.append_txn(1, &[range(0, 0, 1, 10_000)]).unwrap_err();
        assert!(matches!(err, RvmError::LogFull { .. }));
    }

    #[test]
    fn full_log_rejects_appends_until_head_moves() {
        let mut wal = mk_wal(4 * LOG_BLOCK);
        wal.append_txn(1, &[range(0, 0, 1, 800)]).unwrap(); // 2 blocks
        wal.append_txn(2, &[range(0, 0, 2, 800)]).unwrap(); // 2 blocks
        assert_eq!(wal.free_space(), 0);
        assert!(wal.append_txn(3, &[]).is_err());
        wal.advance_head(2 * LOG_BLOCK, 2);
        wal.append_txn(3, &[range(0, 0, 3, 100)]).unwrap();
    }

    #[test]
    fn stale_records_from_previous_lap_are_not_replayed() {
        let area = 8 * LOG_BLOCK;
        let mut wal = mk_wal(area);
        for tid in 1..=4u64 {
            wal.append_txn(tid, &[range(0, 0, tid as u8, 800)]).unwrap();
        }
        // Truncate everything, then write one record on the second lap.
        wal.advance_head(wal.tail(), wal.next_seq());
        wal.append_txn(9, &[range(0, 0, 9, 800)]).unwrap();
        let scan = scan_forward(
            wal.device().as_ref(),
            wal.capacity(),
            wal.head(),
            wal.seq_at_head(),
            None,
        )
        .unwrap();
        // Only the new record; the stale lap-1 records that physically
        // follow it have stale sequence numbers.
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].1.tid, 9);
    }

    #[test]
    fn scan_stops_at_stop_offset() {
        let mut wal = mk_wal(1 << 14);
        wal.append_txn(1, &[range(0, 0, 1, 10)]).unwrap();
        let split = wal.tail();
        wal.append_txn(2, &[range(0, 0, 2, 10)]).unwrap();
        let scan = scan_forward(wal.device().as_ref(), wal.capacity(), 0, 1, Some(split)).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.tail, split);
    }

    #[test]
    fn torn_tail_record_is_ignored() {
        let mut wal = mk_wal(1 << 14);
        wal.append_txn(1, &[range(0, 0, 1, 10)]).unwrap();
        let good_tail = wal.tail();
        let info = wal.append_txn(2, &[range(0, 0, 2, 300)]).unwrap();
        // Corrupt the middle of the second record, as a torn force would.
        wal.device()
            .write_at(LOG_AREA_START + info.offset + 200, &[0xEE; 8])
            .unwrap();
        let scan = scan_forward(wal.device().as_ref(), wal.capacity(), 0, 1, None).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.tail, good_tail);
        assert_eq!(scan.next_seq, 2);
    }

    #[test]
    fn failed_append_restores_cursors() {
        use rvm_storage::{FaultOp, FlakyDevice, FlakyFault};
        let area = 8 * LOG_BLOCK;
        let mem = Arc::new(MemDevice::with_len(LOG_AREA_START + area));
        // Fail the 4th write: txn 1 and 2 are writes 1-2, the pad at the
        // lap end is write 3, and the wrapped txn-3 record is write 4 —
        // the exact "pad persisted, record not" divergence window.
        let dev = Arc::new(FlakyDevice::new(
            Arc::clone(&mem),
            vec![FlakyFault::transient(FaultOp::Write, 4)],
        ));
        let mut wal = Wal::new(dev, area, 0, 0, 1, 1);
        wal.append_txn(1, &[range(0, 0, 1, 1000)]).unwrap();
        wal.append_txn(2, &[range(0, 0, 2, 1000)]).unwrap();
        wal.advance_head(3 * LOG_BLOCK, 2);
        let (tail0, seq0) = (wal.tail(), wal.next_seq());
        let err = wal.append_txn(3, &[range(0, 0, 3, 1000)]).unwrap_err();
        assert!(matches!(err, RvmError::Device(_)));
        assert_eq!(wal.tail(), tail0, "tail restored after failed append");
        assert_eq!(wal.next_seq(), seq0, "next_seq restored");
        // The device healed; re-appending succeeds (pad is rewritten
        // byte-identically) and the log scans clean.
        let info = wal.append_txn(3, &[range(0, 0, 3, 1000)]).unwrap();
        assert_eq!(info.offset, 8 * LOG_BLOCK, "record starts on next lap");
        let scan = scan_forward(
            wal.device().as_ref(),
            wal.capacity(),
            wal.head(),
            wal.seq_at_head(),
            None,
        )
        .unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].1.tid, 3);
        assert_eq!(scan.tail, wal.tail());
        assert_eq!(scan.next_seq, wal.next_seq());
    }

    #[test]
    fn failed_pad_write_restores_cursors() {
        use rvm_storage::{FaultOp, FlakyDevice, FlakyFault};
        let area = 8 * LOG_BLOCK;
        let mem = Arc::new(MemDevice::with_len(LOG_AREA_START + area));
        // Write 3 is the pad record itself.
        let dev = Arc::new(FlakyDevice::new(
            mem,
            vec![FlakyFault::transient(FaultOp::Write, 3)],
        ));
        let mut wal = Wal::new(dev, area, 0, 0, 1, 1);
        wal.append_txn(1, &[range(0, 0, 1, 1000)]).unwrap();
        wal.append_txn(2, &[range(0, 0, 2, 1000)]).unwrap();
        wal.advance_head(3 * LOG_BLOCK, 2);
        let (tail0, seq0) = (wal.tail(), wal.next_seq());
        assert!(wal.append_txn(3, &[range(0, 0, 3, 1000)]).is_err());
        assert_eq!((wal.tail(), wal.next_seq()), (tail0, seq0));
        wal.append_txn(3, &[range(0, 0, 3, 1000)]).unwrap();
    }

    #[test]
    fn group_rollback_restores_cursors_across_many_appends() {
        let mut wal = mk_wal(1 << 16);
        wal.append_txn(1, &[range(0, 0, 1, 100)]).unwrap();
        let ckpt = wal.checkpoint();
        let (tail0, seq0) = (wal.tail(), wal.next_seq());
        // A "group" of three appends whose shared force never happened.
        for tid in 2..=4u64 {
            wal.append_txn(tid, &[range(0, tid * 8, tid as u8, 200)])
                .unwrap();
        }
        assert!(wal.tail() > tail0);
        wal.rollback_to(ckpt);
        assert_eq!(wal.tail(), tail0, "tail restored to pre-group position");
        assert_eq!(wal.next_seq(), seq0, "next_seq restored");
        // Re-appending from the checkpoint rewrites the same offsets and
        // sequence numbers; the log scans clean.
        for tid in 2..=4u64 {
            wal.append_txn(tid, &[range(0, tid * 8, tid as u8, 200)])
                .unwrap();
        }
        let scan = scan_forward(wal.device().as_ref(), wal.capacity(), 0, 1, None).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.tail, wal.tail());
        assert_eq!(scan.next_seq, wal.next_seq());
    }

    #[test]
    fn group_rollback_is_skipped_when_head_passed_the_checkpoint() {
        let mut wal = mk_wal(1 << 16);
        wal.append_txn(1, &[range(0, 0, 1, 100)]).unwrap();
        let ckpt = wal.checkpoint();
        wal.append_txn(2, &[range(0, 8, 2, 100)]).unwrap();
        // Truncation mid-group applied everything and moved the head past
        // the checkpointed tail; rolling back now would put tail < head.
        wal.advance_head(wal.tail(), wal.next_seq());
        let (tail, seq) = (wal.tail(), wal.next_seq());
        wal.rollback_to(ckpt);
        assert_eq!(wal.tail(), tail, "rollback skipped: cursors unchanged");
        assert_eq!(wal.next_seq(), seq);
        assert!(wal.head() <= wal.tail(), "head/tail invariant holds");
    }

    #[test]
    fn backward_scan_matches_forward_scan() {
        let area = 16 * LOG_BLOCK;
        let mut wal = mk_wal(area);
        for tid in 1..=5u64 {
            wal.append_txn(tid, &[range(0, tid * 8, tid as u8, 100)])
                .unwrap();
        }
        let forward = scan_forward(wal.device().as_ref(), area, 0, 1, None).unwrap();
        let mut backward = scan_backward(
            wal.device().as_ref(),
            area,
            wal.head(),
            wal.tail(),
            wal.next_seq(),
        )
        .unwrap();
        backward.reverse();
        assert_eq!(forward.records, backward);
    }

    #[test]
    fn staged_append_matches_direct_append_byte_for_byte() {
        let mut direct = mk_wal(1 << 16);
        let mut staged = mk_wal(1 << 16);
        let mut buf = StagingBuf::new();
        for tid in 1..=3u64 {
            let a = direct
                .append_txn(tid, &[range(0, tid * 16, tid as u8, 120)])
                .unwrap();
            let b = staged
                .append_txn_staged(tid, &[range(0, tid * 16, tid as u8, 120)], &mut buf)
                .unwrap();
            assert_eq!(a, b, "staged append reports identical AppendInfo");
        }
        // Three contiguous records coalesce into one chunk.
        assert_eq!(buf.chunks().len(), 1);
        let tokens = staged.submit_staged(&mut buf);
        assert!(buf.is_empty(), "submit drains the staging buffer");
        for t in tokens {
            staged.device().wait(t).unwrap();
        }
        staged.device().wait(staged.submit_force()).unwrap();

        let scan_d = scan_forward(direct.device().as_ref(), direct.capacity(), 0, 1, None).unwrap();
        let scan_s = scan_forward(staged.device().as_ref(), staged.capacity(), 0, 1, None).unwrap();
        assert_eq!(scan_d, scan_s);
        assert_eq!(staged.tail(), direct.tail());
        assert_eq!(staged.next_seq(), direct.next_seq());
    }

    #[test]
    fn staged_wraparound_pad_splits_into_two_chunks() {
        let area = 8 * LOG_BLOCK;
        let mut wal = mk_wal(area);
        let mut buf = StagingBuf::new();
        wal.append_txn_staged(1, &[range(0, 0, 1, 1000)], &mut buf)
            .unwrap();
        wal.append_txn_staged(2, &[range(0, 0, 2, 1000)], &mut buf)
            .unwrap();
        wal.advance_head(3 * LOG_BLOCK, 2);
        // Pads the lap end (contiguous with the first chunk) then wraps to
        // the physical start of the area: a second, non-contiguous chunk.
        wal.append_txn_staged(3, &[range(0, 0, 3, 1000)], &mut buf)
            .unwrap();
        assert_eq!(buf.chunks().len(), 2);
        assert_eq!(buf.chunks()[1].0, LOG_AREA_START, "wrap restarts the area");
        for t in wal.submit_staged(&mut buf) {
            wal.device().wait(t).unwrap();
        }
        wal.device().wait(wal.submit_force()).unwrap();

        let scan = scan_forward(
            wal.device().as_ref(),
            wal.capacity(),
            wal.head(),
            wal.seq_at_head(),
            None,
        )
        .unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.pads, 1);
        assert_eq!(scan.records[1].1.tid, 3);
        assert_eq!(scan.tail, wal.tail());
    }

    #[test]
    fn staged_log_full_leaves_cursors_and_staging_untouched() {
        let mut wal = mk_wal(4 * LOG_BLOCK);
        let mut buf = StagingBuf::new();
        wal.append_txn_staged(1, &[range(0, 0, 1, 100)], &mut buf)
            .unwrap();
        let (tail0, seq0, bytes0) = (wal.tail(), wal.next_seq(), buf.bytes());
        let err = wal
            .append_txn_staged(2, &[range(0, 0, 2, 10_000)], &mut buf)
            .unwrap_err();
        assert!(matches!(err, RvmError::LogFull { .. }));
        assert_eq!(wal.tail(), tail0);
        assert_eq!(wal.next_seq(), seq0);
        assert_eq!(buf.bytes(), bytes0, "failed staged append stages nothing");
    }

    #[test]
    fn backward_scan_crosses_lap_boundary() {
        let area = 8 * LOG_BLOCK;
        let mut wal = mk_wal(area);
        wal.append_txn(1, &[range(0, 0, 1, 1000)]).unwrap();
        wal.append_txn(2, &[range(0, 0, 2, 1000)]).unwrap();
        wal.advance_head(3 * LOG_BLOCK, 2);
        wal.append_txn(3, &[range(0, 0, 3, 1000)]).unwrap(); // pads + wraps
        let records = scan_backward(
            wal.device().as_ref(),
            area,
            wal.head(),
            wal.tail(),
            wal.next_seq(),
        )
        .unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].1.tid, 3, "newest first");
        assert_eq!(records[1].1.tid, 2);
    }
}
