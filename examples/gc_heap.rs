//! A persistent, garbage-collected object heap over RVM segments — the
//! O'Toole/Nettles/Gifford construction the paper's §8 cites as evidence
//! of RVM's versatility. The collection itself is one RVM transaction,
//! so a crash mid-GC simply never happened.
//!
//! Run with: `cargo run -p rvm-examples --bin gc_heap`

use std::sync::Arc;

use rvm::segment::MemResolver;
use rvm::{CommitMode, Options, Rvm, TxnMode};
use rvm_gc::{ObjRef, PersistentHeap};
use rvm_storage::MemDevice;

fn main() -> rvm::Result<()> {
    let log = Arc::new(MemDevice::with_len(8 << 20));
    let segments = MemResolver::new();
    let boot = |log: &Arc<MemDevice>, segs: &MemResolver| -> rvm::Result<Rvm> {
        Rvm::initialize(
            Options::new(log.clone())
                .resolver(segs.clone().into_resolver())
                .create_if_empty(),
        )
    };

    println!("== building a persistent object graph ==");
    {
        let rvm = boot(&log, &segments)?;
        let heap = PersistentHeap::open(&rvm, "objheap", 256 * 1024)?;

        // A linked list of versions plus plenty of garbage.
        let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
        let mut head = ObjRef::NULL;
        for i in 1..=5u8 {
            head = heap.alloc(&mut txn, &[head], format!("version-{i}").as_bytes())?;
        }
        heap.set_root(&mut txn, 0, head)?;
        for _ in 0..200 {
            heap.alloc(&mut txn, &[], &[0xAA; 64])?; // dead on arrival
        }
        txn.commit(CommitMode::Flush)?;
        println!(
            "allocated {} objects, {} bytes used",
            heap.objects()?,
            heap.allocated()?
        );

        println!("== crash-atomic copying collection ==");
        let (live, reclaimed) = heap.collect(&rvm)?;
        println!("collection kept {live} live objects, reclaimed {reclaimed} bytes");
        rvm.terminate()?;
    }

    println!("== after restart, the graph is intact in the flipped space ==");
    {
        let rvm = boot(&log, &segments)?;
        let heap = PersistentHeap::open(&rvm, "objheap", 256 * 1024)?;
        let mut cur = heap.root(0)?;
        let mut chain = Vec::new();
        while !cur.is_null() {
            chain.push(String::from_utf8_lossy(&heap.payload(cur)?).into_owned());
            cur = heap.refs(cur)?[0];
        }
        println!("root chain: {chain:?}");
        assert_eq!(chain.len(), 5);
        assert_eq!(chain[0], "version-5");
        rvm.terminate()?;
    }
    println!("ok: live data survived both the collection and the restart.");
    Ok(())
}
