//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Truncation mechanism** (§5.1.2's "we expect incremental
//!    truncation to improve performance significantly"): epoch vs
//!    incremental truncation under a TPC-A load on real devices.
//! 2. **Intra/inter optimizations** (§5.2): log traffic with each
//!    optimization disabled, on the Coda client workload.
//! 3. **Transaction modes** (§4.2): commit latency of flush vs no-flush
//!    commits, and set-range cost of restore vs no-restore transactions,
//!    on the simulated 1993 disk.

use std::sync::Arc;

use rvm::segment::MemResolver;
use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TruncationMode, Tuning, TxnMode, PAGE_SIZE};
use rvm_storage::MemDevice;
use simclock::Clock;
use simdisk::{DiskParams, SimDisk};

fn rvm_over_simdisk(clock: &Clock, tuning: Tuning) -> Rvm {
    let log = Arc::new(SimDisk::new(
        Arc::new(MemDevice::with_len(8 << 20)),
        clock.clone(),
        DiskParams::circa_1990(),
    ));
    let seg_backing = Arc::new(SimDisk::new(
        Arc::new(MemDevice::with_len(16 << 20)),
        clock.clone(),
        DiskParams::circa_1990(),
    ));
    let resolver: rvm::segment::DeviceResolver = Arc::new(move |_name, min_len| {
        use rvm_storage::Device as _;
        if seg_backing.as_ref().len()? < min_len {
            seg_backing.as_ref().set_len(min_len)?;
        }
        Ok(seg_backing.clone() as Arc<dyn rvm_storage::Device>)
    });
    // The resolver above aliases every name onto one backing disk, so
    // checksum sidecars are off: this bench measures the paper's logged
    // paths, not catalog maintenance.
    let tuning = Tuning {
        segment_checksums: false,
        ..tuning
    };
    Rvm::initialize(
        Options::new(log)
            .resolver(resolver)
            .tuning(tuning)
            .create_if_empty(),
    )
    .expect("initialize")
}

fn truncation_ablation() {
    println!("== Ablation 1: epoch vs incremental truncation ==");
    println!("Workload: 6000 flush commits of 512 B over a 4 MiB hot set,");
    println!("8 MiB log, truncation threshold 30%. Virtual 1990s disks.");
    println!();
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14} {:>16}",
        "mode", "txn/s", "truncations", "pages", "io ms/txn", "max pause ms"
    );
    for mode in [TruncationMode::Epoch, TruncationMode::Incremental] {
        let clock = Clock::new();
        let tuning = Tuning {
            truncation_mode: mode,
            truncation_threshold: 0.30,
            incremental_reclaim_bytes: 1 << 20,
            ..Tuning::default()
        };
        let rvm = rvm_over_simdisk(&clock, tuning);
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, 1024 * PAGE_SIZE))
            .unwrap();
        let txns = 6000u64;
        let before = clock.snapshot();
        // Burstiness: the longest single commit (epoch truncation runs
        // inline and stalls the committing transaction, the "bursty
        // system performance" of Section 5.1.2).
        let mut max_pause_ms = 0.0f64;
        for i in 0..txns {
            let t0 = clock.now();
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            let off = (i % 8192) * 512;
            region.write(&mut txn, off, &[i as u8; 512]).unwrap();
            txn.commit(CommitMode::Flush).unwrap();
            max_pause_ms = max_pause_ms.max((clock.now() - t0).as_millis_f64());
        }
        let delta = clock.snapshot() - before;
        let stats = rvm.stats();
        let label = match mode {
            TruncationMode::Epoch => "epoch",
            TruncationMode::Incremental => "incremental",
        };
        println!(
            "{:<14} {:>10.1} {:>12} {:>12} {:>14.2} {:>16.1}",
            label,
            txns as f64 / delta.total.as_secs_f64(),
            stats.epoch_truncations,
            stats.pages_written_incremental,
            delta.io.as_millis_f64() / txns as f64,
            max_pause_ms,
        );
    }
    println!();
}

fn optimization_ablation() {
    println!("== Ablation 2: intra/inter optimization on/off (Coda client) ==");
    println!("Workload: the 'mozart' Table 2 client profile, 2000 transactions.");
    println!();
    println!(
        "{:<18} {:>14} {:>10} {:>10}",
        "configuration", "bytes logged", "intra%", "inter%"
    );
    let base = coda_wl::profiles()
        .into_iter()
        .find(|p| p.name == "mozart")
        .map(|mut p| {
            p.txns = 2000;
            p
        })
        .unwrap();
    for (label, intra, inter) in [
        ("both on", true, true),
        ("intra only", true, false),
        ("inter only", false, true),
        ("both off", false, false),
    ] {
        let row = run_coda_with(&base, intra, inter);
        println!(
            "{:<18} {:>14} {:>9.1}% {:>9.1}%",
            label, row.0, row.1, row.2
        );
    }
    println!();
}

/// Runs a Coda profile with chosen optimization switches; returns
/// (bytes_logged, intra%, inter%).
fn run_coda_with(profile: &coda_wl::MachineProfile, intra: bool, inter: bool) -> (u64, f64, f64) {
    // Rebuild the coda run with custom tuning by temporarily patching via
    // a local RVM: reuse coda_wl::run_machine semantics through a fresh
    // run with tuning switches applied globally. The coda crate runs its
    // own RVM with defaults, so replicate its loop here with switches.
    use rand::{RngExt, SeedableRng};
    let log = Arc::new(MemDevice::with_len(256 << 20));
    let tuning = Tuning {
        intra_optimization: intra,
        inter_optimization: inter,
        ..Tuning::default()
    };
    let rvm = Rvm::initialize(
        Options::new(log)
            .resolver(MemResolver::new().into_resolver())
            .tuning(tuning)
            .create_if_empty(),
    )
    .unwrap();
    let region_len = (512 * profile.obj_size * 2).div_ceil(PAGE_SIZE) * PAGE_SIZE + PAGE_SIZE;
    let region = rvm
        .map(&RegionDescriptor::new("coda", 0, region_len))
        .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut burst_left = 0u64;
    let mut burst_obj = 0u64;
    let mut burst_step = 0u64;
    for committed in 0..profile.txns {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        if burst_left == 0 {
            burst_obj = rng.random_range(0..512);
            burst_step = 0;
            let p = 1.0 / profile.burst_mean.max(1.0);
            burst_left = 1;
            while burst_left < 64 && rng.random_range(0.0..1.0) > p {
                burst_left += 1;
            }
        }
        burst_left -= 1;
        burst_step += 1;
        let write_len = (profile.obj_size + burst_step * 8).min(profile.obj_size * 2);
        let base = burst_obj * profile.obj_size * 2;
        let payload = vec![(committed & 0xFF) as u8; write_len as usize];
        region.write(&mut txn, base, &payload).unwrap();
        let mut extra = (profile.obj_size as f64 * profile.dup_intensity) as u64;
        while extra > 0 {
            let len = extra.min(profile.obj_size / 2).max(16).min(write_len);
            let start = base + rng.random_range(0..=(write_len - len));
            txn.set_range(&region, start, len).unwrap();
            extra = extra.saturating_sub(len);
        }
        txn.commit(CommitMode::NoFlush).unwrap();
        if committed % 64 == 63 {
            rvm.flush().unwrap();
        }
    }
    rvm.flush().unwrap();
    let s = rvm.stats();
    (
        s.bytes_logged,
        s.intra_savings_fraction() * 100.0,
        s.inter_savings_fraction() * 100.0,
    )
}

fn mode_ablation() {
    println!("== Ablation 3: transaction modes (commit latency / set-range cost) ==");
    println!("512 B transactions on the simulated 1990s log disk.");
    println!();
    let clock = Clock::new();
    let rvm = rvm_over_simdisk(&clock, Tuning::default());
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 64 * PAGE_SIZE))
        .unwrap();

    // Flush vs no-flush commit latency.
    for (label, mode) in [
        ("flush", CommitMode::Flush),
        ("no-flush", CommitMode::NoFlush),
    ] {
        let before = clock.snapshot();
        let n = 200u64;
        for i in 0..n {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.write(&mut txn, (i % 64) * 512, &[1; 512]).unwrap();
            txn.commit(mode).unwrap();
        }
        let delta = clock.snapshot() - before;
        println!(
            "commit latency, {label:<9}: {:>8.3} ms/txn (I/O)",
            delta.io.as_millis_f64() / n as f64
        );
    }
    rvm.flush().unwrap();
    println!();
    println!("A no-flush commit spools in memory; its cost is deferred to the");
    println!("next flush, giving bounded persistence (Section 4.2).");
}

fn map_latency_ablation() {
    println!("== Ablation 4: map-time loading — eager vs on-demand ==");
    println!("The paper's RVM copied regions in en masse at map time, making");
    println!("startup slow (Section 3.2) and planning 'an optional external");
    println!("pager to copy data on demand'. This library implements both.");
    println!();
    println!(
        "{:<12} {:>16} {:>22}",
        "policy", "map latency", "first 100 txns (ms/txn)"
    );
    for policy in [rvm::LoadPolicy::Eager, rvm::LoadPolicy::OnDemand] {
        let clock = Clock::new();
        let rvm = rvm_over_simdisk(&clock, Tuning::default());
        let before = clock.snapshot();
        // A 12 MiB region on the 1990s data disk.
        let region = rvm
            .map_with(&RegionDescriptor::new("seg", 0, 3072 * PAGE_SIZE), policy)
            .unwrap();
        let map_latency = (clock.snapshot() - before).total;
        let before = clock.snapshot();
        for i in 0..100u64 {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region
                .write(&mut txn, (i * 37 % 3072) * PAGE_SIZE, &[1; 128])
                .unwrap();
            txn.commit(CommitMode::Flush).unwrap();
        }
        let per_txn = (clock.snapshot() - before).total.as_millis_f64() / 100.0;
        let label = match policy {
            rvm::LoadPolicy::Eager => "eager",
            rvm::LoadPolicy::OnDemand => "on-demand",
        };
        println!(
            "{:<12} {:>13.1} ms {:>22.2}",
            label,
            map_latency.as_millis_f64(),
            per_txn
        );
    }
    println!();
    println!("On-demand mapping removes the multi-second startup read at the");
    println!("price of a first-touch fetch per page during early operation.");
    println!();
}

fn main() {
    truncation_ablation();
    optimization_ablation();
    map_latency_ablation();
    mode_ablation();
}
