//! Offline shim for `proptest`: real randomized property testing over the
//! API subset the workspace uses, minus shrinking (a failing case panics
//! with its full debug-printed inputs instead of a minimized one). Case
//! generation is deterministic per (test name, case index), so failures
//! reproduce without persistence files. See `vendor/README.md`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only `cases` is honored; the other fields exist
/// so struct-literal configs from the real API keep compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

pub mod test_runner {
    use std::fmt;

    pub use crate::ProptestConfig as Config;

    /// Why a property case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic xoshiro256** stream per (test name, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut sm = h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sample space");
            self.next_u64() % bound
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// A generator of random values (the shim's whole strategy model — no
/// value tree, no shrinking).
pub trait Strategy {
    type Value: fmt::Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `Just(v)`: always produces `v`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

trait SampleableInt: Copy + fmt::Debug {
    fn from_offset(base: Self, offset: u64) -> Self;
    fn span(range: &Range<Self>) -> u64;
    fn span_inclusive(range: &RangeInclusive<Self>) -> (Self, u64);
}

macro_rules! sampleable_int {
    ($($t:ty),*) => {$(
        impl SampleableInt for $t {
            fn from_offset(base: Self, offset: u64) -> Self {
                (base as i128 + offset as i128) as $t
            }
            fn span(range: &Range<Self>) -> u64 {
                assert!(range.start < range.end, "empty range strategy");
                (range.end as i128 - range.start as i128) as u64
            }
            fn span_inclusive(range: &RangeInclusive<Self>) -> (Self, u64) {
                let (start, end) = (*range.start(), *range.end());
                assert!(start <= end, "empty range strategy");
                (start, (end as i128 - start as i128) as u64 + 1)
            }
        }
    )*};
}

sampleable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleableInt> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::from_offset(self.start, rng.below(T::span(self)))
    }
}

impl<T: SampleableInt> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (start, span) = T::span_inclusive(self);
        T::from_offset(start, rng.below(span))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String strategies from a regex-like pattern. Supported subset: a
/// sequence of literal characters or `[a-z]`-style classes (ranges and
/// plain members), each optionally repeated `{m}` or `{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                + i;
            let mut alpha = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    alpha.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    alpha.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            alpha
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
        // Optional {m} / {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad repetition"),
                    n.trim().parse::<usize>().expect("bad repetition"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("bad repetition");
                    (m, m)
                }
            };
            i = close + 1;
            (min, max)
        } else {
            (1, 1)
        };
        let n = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary_value(rng: &mut TestRng) -> sample::Index {
        sample::Index::from_raw(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    /// An abstract index into a collection of yet-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolves against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Defines property tests: each `fn` runs `config.cases` times with
/// fresh random inputs. `#[test]` must be written explicitly on each
/// function (as this workspace does); failures panic with the full
/// debug-printed inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__name, __case);
                let __vals = ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                let __desc = format!("{:?}", __vals);
                let ($($arg,)+) = __vals;
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property failed at case {}/{}: {}\n    inputs: {}",
                        __case + 1,
                        __config.cases,
                        e,
                        __desc
                    );
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`: fail the case
/// (with its inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)`: like `assert_eq!` but routed through
/// the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// `prop_assert_ne!(left, right)`: negated [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy modules, as the real crate's prelude exposes.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            xs in prop::collection::vec((0u64..100, 1u64..10), 1..20),
            frac in 0.0f64..1.0,
            pick in any::<prop::sample::Index>(),
            name in "[a-z]{1,24}"
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (a, b) in &xs {
                prop_assert!(*a < 100 && (1..10).contains(b));
            }
            prop_assert!((0.0..1.0).contains(&frac));
            prop_assert!(pick.index(xs.len()) < xs.len());
            prop_assert!(!name.is_empty() && name.len() <= 24);
            prop_assert!(name.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]

                #[allow(dead_code)]
                fn always_fails(x in 5u64..6) {
                    prop_assert!(x != 5, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("x was 5"), "got: {msg}");
        assert!(msg.contains("inputs: (5,)"), "got: {msg}");
    }
}
