//! Post-mortem RVM log inspection (§6).
//!
//! "We realized that the information in RVM's log offered excellent clues
//! to the source of these corruptions. All we had to do was to save a
//! copy of the log before truncation, and to build a post-mortem tool to
//! search and display the history of modifications recorded by the log."
//!
//! This crate is that tool: it opens a log device read-only, walks the
//! live records (forward or backward — the Figure 5 bidirectional
//! displacements at work), and can filter the modification history by
//! segment and byte range. The `rvmlog` binary wraps it for files.

use std::sync::Arc;

use rvm::log::record::{parse_header, TxnRecord, HEADER_SIZE};
use rvm::log::status::{
    read_status, StatusBlock, LOG_AREA_START, STATUS_A_OFFSET, STATUS_BLOCK_SIZE, STATUS_B_OFFSET,
};
use rvm::log::wal::{scan_backward, scan_forward};
use rvm::ranges::IntervalMap;
use rvm::scrub::{checksum_of, page_count, page_len, sidecar_name, SegmentChecksums};
pub use rvm::segment::DeviceResolver as Resolver;
use rvm::segment::{DeviceResolver, SegmentId};
use rvm::{Result, RvmError, PAGE_SIZE};
pub use rvm_check::VerifyReport;
use rvm_storage::Device;

/// One modification of one range, as recorded in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Record sequence number.
    pub seq: u64,
    /// Transaction id.
    pub tid: u64,
    /// Logical log offset of the record.
    pub log_offset: u64,
    /// Segment written.
    pub seg: SegmentId,
    /// Segment name, if the segment table knows it.
    pub seg_name: Option<String>,
    /// Byte offset within the segment.
    pub offset: u64,
    /// The new value written.
    pub data: Vec<u8>,
}

/// What [`LogInspector::doctor`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoctorReport {
    /// Record-area length.
    pub area_len: u64,
    /// Logical head per the status block.
    pub head: u64,
    /// Tail the status block records (a hint; may trail the true tail).
    pub status_tail: u64,
    /// Tail the forward scan actually reached.
    pub scanned_tail: u64,
    /// Sequence number the next record should carry.
    pub next_seq: u64,
    /// Valid committed records found.
    pub live_records: usize,
    /// Pad records found.
    pub pads: u64,
    /// Validity of status copies A and B.
    pub status_copies_valid: [bool; 2],
    /// Damage findings; empty means the log is healthy.
    pub findings: Vec<String>,
}

impl DoctorReport {
    /// Whether any damage was found.
    pub fn is_damaged(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Human-readable report, as `rvmlog doctor` prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "log: area {} bytes, head {}, scanned tail {} (status tail {}), {} live record(s), {} pad(s)\n",
            self.area_len,
            self.head,
            self.scanned_tail,
            self.status_tail,
            self.live_records,
            self.pads
        ));
        let word = |ok: bool| if ok { "valid" } else { "CORRUPT" };
        out.push_str(&format!(
            "status copies: A {}, B {}\n",
            word(self.status_copies_valid[0]),
            word(self.status_copies_valid[1])
        ));
        if self.findings.is_empty() {
            out.push_str("no damage found\n");
        } else {
            for f in &self.findings {
                out.push_str(&format!("DAMAGE: {f}\n"));
            }
        }
        out
    }
}

/// What `rvmlog scrub` found for one segment of the log's segment table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScrub {
    /// Segment name, as the segment table records it.
    pub segment: String,
    /// Total pages the segment holds, or `None` when the segment device
    /// could not be opened.
    pub pages: Option<usize>,
    /// Pages the checksum catalog covers (0 when there is no catalog).
    pub covered: usize,
    /// Whether a valid sidecar catalog was found.
    pub catalog: bool,
    /// Pages whose current bytes fail their catalog checksum.
    pub mismatched: Vec<usize>,
}

/// The result of an offline checksum verification pass
/// ([`LogInspector::scrub_segments`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineScrubReport {
    /// Per-segment findings, in segment-table order.
    pub segments: Vec<SegmentScrub>,
}

impl OfflineScrubReport {
    /// Whether every covered page verified. Missing catalogs or
    /// unreachable segments are reported but are not corruption.
    pub fn is_clean(&self) -> bool {
        self.segments.iter().all(|s| s.mismatched.is_empty())
    }

    /// Human-readable report, as `rvmlog scrub` prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut verified = 0usize;
        let mut mismatches = 0usize;
        for seg in &self.segments {
            match seg.pages {
                None => {
                    out.push_str(&format!("'{}': cannot open segment\n", seg.segment));
                    continue;
                }
                Some(pages) if !seg.catalog => {
                    out.push_str(&format!(
                        "'{}': {} page(s), no checksum catalog (nothing to verify against)\n",
                        seg.segment, pages
                    ));
                    continue;
                }
                Some(pages) => {
                    verified += seg.covered.min(pages) - seg.mismatched.len();
                    mismatches += seg.mismatched.len();
                    if seg.mismatched.is_empty() {
                        out.push_str(&format!(
                            "'{}': {} page(s), {} covered, all match\n",
                            seg.segment, pages, seg.covered
                        ));
                    } else {
                        let pages_list: Vec<String> =
                            seg.mismatched.iter().map(|p| p.to_string()).collect();
                        out.push_str(&format!(
                            "'{}': {} page(s), {} covered, {} MISMATCH (page {})\n",
                            seg.segment,
                            pages,
                            seg.covered,
                            seg.mismatched.len(),
                            pages_list.join(", ")
                        ));
                    }
                }
            }
        }
        out.push_str(&format!(
            "scrub: {verified} page(s) verified, {mismatches} mismatch(es)\n"
        ));
        out
    }
}

/// How `rvmlog salvage` disposed of one corrupt page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SalvageOutcome {
    /// The page's latest committed content was fully present in the live
    /// log span; the page was rewritten from it and the catalog updated.
    RebuiltFromLog,
    /// The live log does not cover the whole page, so no committed image
    /// of it exists offline; mapping the region will quarantine it.
    Unrecoverable,
}

/// The result of an offline repair pass ([`LogInspector::salvage_segments`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Every corrupt page found, with its disposition.
    pub findings: Vec<(String, usize, SalvageOutcome)>,
}

impl SalvageReport {
    /// Whether every corrupt page was repaired (vacuously true when none
    /// was corrupt).
    pub fn is_clean(&self) -> bool {
        self.findings
            .iter()
            .all(|(_, _, o)| *o != SalvageOutcome::Unrecoverable)
    }

    /// Human-readable report, as `rvmlog salvage` prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut repaired = 0usize;
        let mut lost = 0usize;
        for (segment, page, outcome) in &self.findings {
            match outcome {
                SalvageOutcome::RebuiltFromLog => {
                    repaired += 1;
                    out.push_str(&format!(
                        "repaired: '{segment}' page {page} rebuilt from the live log span\n"
                    ));
                }
                SalvageOutcome::Unrecoverable => {
                    lost += 1;
                    out.push_str(&format!(
                        "UNRECOVERABLE: '{segment}' page {page} — the live log covers only \
                         part of the page; the region will be quarantined when mapped\n"
                    ));
                }
            }
        }
        out.push_str(&format!(
            "salvage: {repaired} page(s) repaired, {lost} unrecoverable\n"
        ));
        out
    }
}

/// Checksum-catalog coverage of one segment, as `rvmlog doctor`
/// summarizes it (coverage only — no page is read or verified).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogCoverage {
    /// Segment name, as the segment table records it.
    pub segment: String,
    /// Total pages the segment holds, or `None` when the segment device
    /// could not be opened.
    pub pages: Option<usize>,
    /// Pages the catalog covers (0 when there is no catalog).
    pub covered: usize,
    /// Whether a valid sidecar catalog was found.
    pub catalog: bool,
}

impl CatalogCoverage {
    /// One line of the doctor output.
    pub fn render(&self) -> String {
        match (self.pages, self.catalog) {
            (None, _) => format!("checksum coverage: '{}' segment unreachable", self.segment),
            (Some(pages), false) => {
                format!(
                    "checksum coverage: '{}' 0/{} page(s) (no catalog)",
                    self.segment, pages
                )
            }
            (Some(pages), true) => format!(
                "checksum coverage: '{}' {}/{} page(s)",
                self.segment,
                self.covered.min(pages),
                pages
            ),
        }
    }
}

/// A read-only view over an RVM log.
pub struct LogInspector {
    dev: Arc<dyn Device>,
    status: StatusBlock,
}

impl LogInspector {
    /// Opens the log, validating its status block.
    pub fn open(dev: Arc<dyn Device>) -> Result<LogInspector> {
        let status = read_status(dev.as_ref())?;
        Ok(LogInspector { dev, status })
    }

    /// The log's status block (head/tail, segment table).
    pub fn status(&self) -> &StatusBlock {
        &self.status
    }

    /// All live committed transaction records, oldest first.
    pub fn records(&self) -> Result<Vec<(u64, TxnRecord)>> {
        let scan = scan_forward(
            self.dev.as_ref(),
            self.status.area_len,
            self.status.head,
            self.status.seq_at_head,
            None,
        )?;
        Ok(scan.records)
    }

    /// All live records, newest first, via the backward scan.
    pub fn records_backward(&self) -> Result<Vec<(u64, TxnRecord)>> {
        let scan = scan_forward(
            self.dev.as_ref(),
            self.status.area_len,
            self.status.head,
            self.status.seq_at_head,
            None,
        )?;
        scan_backward(
            self.dev.as_ref(),
            self.status.area_len,
            self.status.head,
            scan.tail,
            scan.next_seq,
        )
    }

    /// The modification history of `[offset, offset + len)` in the named
    /// segment, oldest first — the §6 debugging query.
    pub fn history(&self, segment: &str, offset: u64, len: u64) -> Result<Vec<HistoryEntry>> {
        let seg = self
            .status
            .segment_by_name(segment)
            .ok_or_else(|| RvmError::BadLog(format!("segment '{segment}' not in the log")))?
            .id;
        let mut out = Vec::new();
        for (log_offset, record) in self.records()? {
            for range in &record.ranges {
                let end = range.offset + range.data.len() as u64;
                if range.seg == seg && range.offset < offset + len && end > offset {
                    out.push(HistoryEntry {
                        seq: record.seq,
                        tid: record.tid,
                        log_offset,
                        seg: range.seg,
                        seg_name: Some(segment.to_owned()),
                        offset: range.offset,
                        data: range.data.clone(),
                    });
                }
            }
        }
        Ok(out)
    }

    /// Read-only damage scan: walks the live record area, classifies what
    /// terminated it, and checks both status copies — without writing a
    /// byte.
    pub fn doctor(&self) -> Result<DoctorReport> {
        let mut status_copies_valid = [false; 2];
        let mut findings = Vec::new();
        for (i, off) in [STATUS_A_OFFSET, STATUS_B_OFFSET].iter().enumerate() {
            let mut buf = vec![0u8; STATUS_BLOCK_SIZE as usize];
            if self.dev.read_at(*off, &mut buf).is_ok() && StatusBlock::decode(&buf).is_some() {
                status_copies_valid[i] = true;
            } else {
                findings.push(format!(
                    "status copy {} is corrupt (the other copy carries the log)",
                    ['A', 'B'][i]
                ));
            }
        }

        let area_len = self.status.area_len;
        let head = self.status.head;
        let scan = scan_forward(
            self.dev.as_ref(),
            area_len,
            head,
            self.status.seq_at_head,
            None,
        )?;

        if scan.tail < self.status.tail {
            findings.push(format!(
                "log ends at offset {} but the status block records tail {}: \
                 {} byte(s) of committed log are unreadable",
                scan.tail,
                self.status.tail,
                self.status.tail - scan.tail
            ));
        }

        // Classify what stopped the scan. (A scan that consumed the whole
        // area stopped for capacity, not damage.)
        if scan.tail - head < area_len {
            let phys = LOG_AREA_START + scan.tail % area_len;
            let mut header_buf = [0u8; HEADER_SIZE as usize];
            self.dev.read_at(phys, &mut header_buf)?;
            match parse_header(&header_buf) {
                None if header_buf.iter().all(|&b| b == 0) => {
                    // Clean end: never-written space.
                }
                None => {
                    // Not a header. On the first lap the area beyond the
                    // tail has never held records, so bytes here mean a
                    // torn write; on later laps they may be stale data
                    // from an earlier lap, which is normal.
                    if scan.tail < area_len {
                        findings.push(format!(
                            "torn/short record at offset {}: bytes present but no valid header",
                            scan.tail
                        ));
                    }
                }
                Some(h) if h.seq == scan.next_seq => {
                    let lap_remaining = area_len - scan.tail % area_len;
                    let padded = h.padded_len();
                    if padded > lap_remaining || scan.tail - head + padded > area_len {
                        findings.push(format!(
                            "short record at offset {}: header (seq {}) claims {} bytes, \
                             more than the {} that remain",
                            scan.tail,
                            h.seq,
                            padded,
                            lap_remaining.min(area_len - (scan.tail - head))
                        ));
                    } else {
                        findings.push(format!(
                            "torn record at offset {}: valid header (seq {}, tid {}) \
                             but the payload fails its checksum",
                            scan.tail, h.seq, h.tid
                        ));
                    }
                }
                Some(h) if h.seq > scan.next_seq => {
                    findings.push(format!(
                        "sequence gap at offset {}: expected seq {}, found seq {}",
                        scan.tail, scan.next_seq, h.seq
                    ));
                }
                Some(_) => {
                    // A record with an older seq: stale data from a
                    // previous lap — a clean end.
                }
            }
        }

        Ok(DoctorReport {
            area_len,
            head,
            status_tail: self.status.tail,
            scanned_tail: scan.tail,
            next_seq: scan.next_seq,
            live_records: scan.records.len(),
            pads: scan.pads,
            status_copies_valid,
            findings,
        })
    }

    /// Offline checksum verification (`rvmlog scrub`): reads every page
    /// of every segment in the log's segment table and checks it against
    /// its sidecar checksum catalog. Never writes a byte; unreachable
    /// segments and missing catalogs are reported, not errors.
    pub fn scrub_segments(&self, resolver: &DeviceResolver) -> OfflineScrubReport {
        let segments = self
            .status
            .segments
            .iter()
            .map(|info| scrub_one(resolver, &info.name))
            .collect();
        OfflineScrubReport { segments }
    }

    /// Catalog coverage per segment, without reading any data page — the
    /// `rvmlog doctor` summary of how much of the image checksums protect.
    pub fn checksum_coverage(&self, resolver: &DeviceResolver) -> Vec<CatalogCoverage> {
        self.status
            .segments
            .iter()
            .map(|info| {
                let pages = (resolver)(&info.name, 0)
                    .and_then(|seg| seg.len())
                    .ok()
                    .map(page_count);
                let entries = (resolver)(&sidecar_name(&info.name), 0)
                    .ok()
                    .and_then(|dev| SegmentChecksums::load_readonly(dev.as_ref()).ok().flatten());
                CatalogCoverage {
                    segment: info.name.clone(),
                    pages,
                    covered: entries.as_ref().map_or(0, Vec::len),
                    catalog: entries.is_some(),
                }
            })
            .collect()
    }

    /// Offline repair (`rvmlog salvage`): scrubs every segment, then walks
    /// the same repair ladder recovery uses for each corrupt page — if the
    /// live (un-truncated) log span fully covers the page, its latest
    /// committed content is rebuilt from the log, written back, and the
    /// catalog updated; otherwise the page is reported unrecoverable and
    /// left for quarantine at the next `map`.
    pub fn salvage_segments(&self, resolver: &DeviceResolver) -> Result<SalvageReport> {
        let scrub = self.scrub_segments(resolver);
        let mut findings = Vec::new();
        if scrub.is_clean() {
            return Ok(SalvageReport { findings });
        }

        // Latest-wins content of the live span, per segment: newest record
        // first, first writer of each byte wins — the same trees recovery
        // builds before applying.
        let mut trees: std::collections::BTreeMap<SegmentId, IntervalMap> =
            std::collections::BTreeMap::new();
        let records = self.records()?;
        for (_, record) in records.iter().rev() {
            for range in &record.ranges {
                trees
                    .entry(range.seg)
                    .or_default()
                    .insert_if_uncovered(range.offset, &range.data);
            }
        }

        let empty = IntervalMap::default();
        for seg_scrub in scrub.segments.iter().filter(|s| !s.mismatched.is_empty()) {
            let name = &seg_scrub.segment;
            // The scrub report names segments from the status table, but
            // this tool runs against arbitrary (possibly corrupt) media —
            // report the inconsistency instead of panicking on it.
            let info = self.status.segment_by_name(name).ok_or_else(|| {
                RvmError::Media(format!(
                    "scrub reported segment '{name}' which is missing from the status table"
                ))
            })?;
            let seg = (resolver)(name, 0)?;
            let seg_len = seg.len()?;
            let catalog =
                SegmentChecksums::open((resolver)(&sidecar_name(name), 0)?, seg.as_ref(), seg_len)?;
            let tree = trees.get(&info.id).unwrap_or(&empty);
            let mut wrote = false;
            for &page in &seg_scrub.mismatched {
                let start = page as u64 * PAGE_SIZE;
                let plen = page_len(seg_len, page) as u64;
                let covered: u64 = tree
                    .iter()
                    .map(|(off, data)| {
                        let end = off + data.len() as u64;
                        end.min(start + plen).saturating_sub(off.max(start))
                    })
                    .sum();
                if plen > 0 && covered == plen {
                    let mut buf = vec![0u8; plen as usize];
                    tree.overlay_onto(start, &mut buf);
                    seg.write_at(start, &buf)?;
                    catalog.update(page, &buf);
                    wrote = true;
                    findings.push((name.clone(), page, SalvageOutcome::RebuiltFromLog));
                } else {
                    findings.push((name.clone(), page, SalvageOutcome::Unrecoverable));
                }
            }
            if wrote {
                seg.sync()?;
                catalog.persist()?;
            }
        }
        Ok(SalvageReport { findings })
    }

    /// Full WAL invariant verification (`rvmlog verify`): everything
    /// [`LogInspector::doctor`] checks is about where the live log *ends*;
    /// this additionally proves the structural invariants the format
    /// promises — reverse-displacement canonicality, forward/backward scan
    /// symmetry, status-copy agreement, and recovery-tree idempotence.
    pub fn verify(&self) -> Result<VerifyReport> {
        rvm_check::verify(&self.dev)
    }

    /// A human-readable summary of the log.
    pub fn summary(&self) -> Result<String> {
        let records = self.records()?;
        let mut out = String::new();
        out.push_str(&format!(
            "log: area {} bytes, head {}, tail {}, {} live record(s)\n",
            self.status.area_len,
            self.status.head,
            self.status.tail,
            records.len()
        ));
        out.push_str("segments:\n");
        for seg in &self.status.segments {
            out.push_str(&format!(
                "  {}: '{}' (min length {})\n",
                seg.id, seg.name, seg.min_len
            ));
        }
        for (off, rec) in &records {
            out.push_str(&format!(
                "  @{off}: seq {} tid {} — {} range(s), {} data byte(s)\n",
                rec.seq,
                rec.tid,
                rec.ranges.len(),
                rec.ranges.iter().map(|r| r.data.len()).sum::<usize>()
            ));
        }
        Ok(out)
    }
}

/// Verifies one segment against its sidecar catalog, read-only. Errors
/// opening the segment or its catalog become per-segment report states,
/// never failures; a page whose read errors counts as a mismatch (the
/// repair ladder is what distinguishes transient from resident).
fn scrub_one(resolver: &DeviceResolver, name: &str) -> SegmentScrub {
    let unreachable = || SegmentScrub {
        segment: name.to_owned(),
        pages: None,
        covered: 0,
        catalog: false,
        mismatched: Vec::new(),
    };
    let Ok(seg) = (resolver)(name, 0) else {
        return unreachable();
    };
    let Ok(seg_len) = seg.len() else {
        return unreachable();
    };
    let pages = page_count(seg_len);
    let entries = (resolver)(&sidecar_name(name), 0)
        .ok()
        .and_then(|dev| SegmentChecksums::load_readonly(dev.as_ref()).ok().flatten());
    let Some(entries) = entries else {
        return SegmentScrub {
            segment: name.to_owned(),
            pages: Some(pages),
            covered: 0,
            catalog: false,
            mismatched: Vec::new(),
        };
    };
    let mut mismatched = Vec::new();
    for (page, &expected) in entries.iter().enumerate().take(pages) {
        match checksum_of(seg.as_ref(), seg_len, page) {
            Ok(sum) if sum == expected => {}
            _ => mismatched.push(page),
        }
    }
    SegmentScrub {
        segment: name.to_owned(),
        pages: Some(pages),
        covered: entries.len(),
        catalog: true,
        mismatched,
    }
}

/// Formats a history entry like the `rvmlog` binary does.
pub fn format_entry(entry: &HistoryEntry) -> String {
    let preview: String = entry
        .data
        .iter()
        .take(16)
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ");
    let ellipsis = if entry.data.len() > 16 { " …" } else { "" };
    format!(
        "seq {:>6}  tid {:>6}  {}[{}..{}): {}{}",
        entry.seq,
        entry.tid,
        entry
            .seg_name
            .clone()
            .unwrap_or_else(|| entry.seg.to_string()),
        entry.offset,
        entry.offset + entry.data.len() as u64,
        preview,
        ellipsis
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm::segment::MemResolver;
    use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
    use rvm_storage::MemDevice;

    /// Builds a log with a known history and "saves a copy before
    /// truncation" by never truncating.
    fn history_world() -> Arc<MemDevice> {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let rvm = Rvm::initialize(
            Options::new(log.clone())
                .resolver(MemResolver::new().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("meta", 0, PAGE_SIZE))
            .unwrap();
        for i in 0..5u8 {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.write(&mut txn, 100, &[i; 8]).unwrap();
            if i % 2 == 0 {
                region.write(&mut txn, 300, &[0x40 + i; 4]).unwrap();
            }
            txn.commit(CommitMode::Flush).unwrap();
        }
        std::mem::forget(rvm);
        log
    }

    #[test]
    fn summary_lists_records_and_segments() {
        let log = history_world();
        let inspector = LogInspector::open(log).unwrap();
        let summary = inspector.summary().unwrap();
        assert!(summary.contains("5 live record(s)"), "{summary}");
        assert!(summary.contains("'meta'"), "{summary}");
    }

    #[test]
    fn history_filters_by_range() {
        let log = history_world();
        let inspector = LogInspector::open(log).unwrap();
        let h100 = inspector.history("meta", 100, 8).unwrap();
        assert_eq!(h100.len(), 5);
        // Oldest first: values 0..5 in order.
        for (i, entry) in h100.iter().enumerate() {
            assert_eq!(entry.data, vec![i as u8; 8]);
        }
        let h300 = inspector.history("meta", 300, 4).unwrap();
        assert_eq!(h300.len(), 3, "only even iterations wrote 300");
        let none = inspector.history("meta", 2000, 8).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn unknown_segment_is_an_error() {
        let log = history_world();
        let inspector = LogInspector::open(log).unwrap();
        assert!(inspector.history("nope", 0, 8).is_err());
    }

    #[test]
    fn backward_scan_agrees_with_forward() {
        let log = history_world();
        let inspector = LogInspector::open(log).unwrap();
        let fwd = inspector.records().unwrap();
        let mut bwd = inspector.records_backward().unwrap();
        bwd.reverse();
        assert_eq!(fwd, bwd);
    }

    /// Like [`history_world`] but terminated cleanly, so the status block
    /// records the true tail.
    fn terminated_world() -> Arc<MemDevice> {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let rvm = Rvm::initialize(
            Options::new(log.clone())
                .resolver(MemResolver::new().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("meta", 0, PAGE_SIZE))
            .unwrap();
        for i in 0..3u8 {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.write(&mut txn, 64, &[i; 8]).unwrap();
            txn.commit(CommitMode::Flush).unwrap();
        }
        rvm.terminate().unwrap();
        log
    }

    #[test]
    fn doctor_passes_clean_log() {
        let log = history_world();
        let report = LogInspector::open(log).unwrap().doctor().unwrap();
        assert!(!report.is_damaged(), "{:?}", report.findings);
        assert_eq!(report.live_records, 5);
        assert_eq!(report.status_copies_valid, [true, true]);
        assert!(report.render().contains("no damage found"));
    }

    #[test]
    fn doctor_reports_torn_record() {
        let log = history_world();
        let inspector = LogInspector::open(log.clone()).unwrap();
        let (off, _) = inspector.records().unwrap()[2];
        // Corrupt the third record's payload; its header stays intact.
        log.write_at(LOG_AREA_START + off + HEADER_SIZE + 5, &[0xEE; 8])
            .unwrap();
        let report = LogInspector::open(log).unwrap().doctor().unwrap();
        assert!(report.is_damaged());
        assert_eq!(report.live_records, 2, "scan stops before the damage");
        assert!(
            report.findings.iter().any(|f| f.contains("torn record")),
            "{:?}",
            report.findings
        );
        assert!(report.render().contains("DAMAGE"));
    }

    #[test]
    fn doctor_detects_unreadable_committed_log() {
        let log = terminated_world();
        // Wipe the start of the record area; the status block still
        // promises records up to its recorded tail.
        log.write_at(LOG_AREA_START, &vec![0u8; 512]).unwrap();
        let report = LogInspector::open(log).unwrap().doctor().unwrap();
        assert!(report.is_damaged());
        assert!(report.status_tail > report.scanned_tail);
        assert!(
            report.findings.iter().any(|f| f.contains("unreadable")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn doctor_flags_corrupt_status_copy() {
        let log = history_world();
        log.write_at(STATUS_A_OFFSET + 32, &[0xFF; 4]).unwrap();
        // Copy B still opens the log.
        let report = LogInspector::open(log).unwrap().doctor().unwrap();
        assert!(report.is_damaged());
        assert_eq!(report.status_copies_valid, [false, true]);
        assert_eq!(report.live_records, 5, "records themselves are fine");
    }

    /// The acceptance pairing for `rvmlog verify`: corruption in the
    /// unchecksummed padding between a record's body and trailer passes
    /// `doctor` untouched (the forward scan never reads it) but breaks
    /// the reverse-displacement canonicality invariant.
    #[test]
    fn verify_catches_padding_corruption_doctor_misses() {
        let log = history_world();
        let inspector = LogInspector::open(log.clone()).unwrap();
        let (off, _) = inspector.records().unwrap()[1];
        let mut header_buf = [0u8; HEADER_SIZE as usize];
        log.read_at(LOG_AREA_START + off, &mut header_buf).unwrap();
        let header = parse_header(&header_buf).unwrap();
        let body_end = off + HEADER_SIZE + header.payload_len as u64;
        log.write_at(LOG_AREA_START + body_end, &[0xBA, 0xD1])
            .unwrap();

        let inspector = LogInspector::open(log).unwrap();
        let doctor = inspector.doctor().unwrap();
        assert!(
            !doctor.is_damaged(),
            "doctor is blind to padding corruption: {:?}",
            doctor.findings
        );
        let verify = inspector.verify().unwrap();
        assert!(!verify.is_clean());
        assert!(
            verify
                .findings
                .iter()
                .any(|f| f.contains("reverse-displacement block")),
            "{:?}",
            verify.findings
        );
    }

    #[test]
    fn verify_passes_clean_log() {
        let log = history_world();
        let report = LogInspector::open(log).unwrap().verify().unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.live_records, 5);
        assert!(report.render().contains("all invariants hold"));
    }

    /// A world whose log fully covers page 0 of a two-page segment:
    /// catalogs are adopted at `map`, the log is never truncated, and the
    /// shared [`MemResolver`] lets the test corrupt segment bytes.
    fn media_world() -> (Arc<MemDevice>, MemResolver) {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let resolver = MemResolver::new();
        let rvm = Rvm::initialize(
            Options::new(log.clone())
                .resolver(resolver.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("meta", 0, 2 * PAGE_SIZE))
            .unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region
            .write(&mut txn, 0, &vec![0x5A; PAGE_SIZE as usize])
            .unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        std::mem::forget(rvm);
        (log, resolver)
    }

    #[test]
    fn scrub_passes_clean_segments_and_reports_coverage() {
        let (log, resolver) = media_world();
        let inspector = LogInspector::open(log).unwrap();
        let dr = resolver.clone().into_resolver();
        let report = inspector.scrub_segments(&dr);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.segments.len(), 1);
        assert_eq!(report.segments[0].pages, Some(2));
        assert_eq!(report.segments[0].covered, 2);
        assert!(report.render().contains("all match"), "{}", report.render());

        let coverage = inspector.checksum_coverage(&dr);
        assert_eq!(coverage.len(), 1);
        assert!(coverage[0].catalog);
        assert!(
            coverage[0].render().contains("'meta' 2/2 page(s)"),
            "{}",
            coverage[0].render()
        );
    }

    #[test]
    fn scrub_detects_rot_and_salvage_rebuilds_log_covered_pages() {
        let (log, resolver) = media_world();
        let seg = resolver.resolve("meta", 0).unwrap();
        // Rot in page 0 (fully covered by the live log) and page 1
        // (never written by any committed transaction).
        seg.write_at(100, &[0xEE; 8]).unwrap();
        seg.write_at(PAGE_SIZE + 7, &[0xEE; 8]).unwrap();

        let inspector = LogInspector::open(log).unwrap();
        let dr = resolver.clone().into_resolver();
        let report = inspector.scrub_segments(&dr);
        assert!(!report.is_clean());
        assert_eq!(report.segments[0].mismatched, vec![0, 1]);
        assert!(report.render().contains("MISMATCH"), "{}", report.render());

        let salvage = inspector.salvage_segments(&dr).unwrap();
        assert_eq!(salvage.findings.len(), 2);
        assert_eq!(
            salvage.findings[0],
            ("meta".to_owned(), 0, SalvageOutcome::RebuiltFromLog)
        );
        assert_eq!(
            salvage.findings[1],
            ("meta".to_owned(), 1, SalvageOutcome::Unrecoverable)
        );
        assert!(!salvage.is_clean());

        // Page 0 carries the committed content again and verifies; page 1
        // is still rotten (nothing committed exists to rebuild it from).
        let mut buf = [0u8; 8];
        seg.read_at(100, &mut buf).unwrap();
        assert_eq!(buf, [0x5A; 8]);
        let after = inspector.scrub_segments(&dr);
        assert_eq!(after.segments[0].mismatched, vec![1]);
    }

    #[test]
    fn salvage_is_a_no_op_on_clean_segments() {
        let (log, resolver) = media_world();
        let inspector = LogInspector::open(log).unwrap();
        let dr = resolver.into_resolver();
        let salvage = inspector.salvage_segments(&dr).unwrap();
        assert!(salvage.findings.is_empty());
        assert!(salvage.is_clean());
        assert!(salvage.render().contains("0 page(s) repaired"));
    }

    #[test]
    fn entry_formatting_is_stable() {
        let entry = HistoryEntry {
            seq: 3,
            tid: 12,
            log_offset: 0,
            seg: SegmentId::new(0),
            seg_name: Some("meta".to_owned()),
            offset: 96,
            data: vec![0xAB; 20],
        };
        let line = format_entry(&entry);
        assert!(line.contains("meta[96..116)"), "{line}");
        assert!(line.contains('…'), "long data is elided: {line}");
    }
}
