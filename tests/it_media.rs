//! The media-failure corruption matrix: checksummed segments under
//! injected bit rot, exercising every rung of the repair ladder.
//!
//! * single-replica rot under a mirror → scrub detects it and
//!   read-repair heals the losing replica in place;
//! * both-copies rot of a page the un-truncated WAL still covers →
//!   recovery detects the mismatch and rebuilds the page from the log;
//! * unrecoverable rot (no mirror, no log span, no VM image) →
//!   quarantine: that region alone turns read-only degraded
//!   ([`RvmError::Media`]) while other regions keep committing;
//! * a seeded rot storm over a mirrored segment → repeated scrubs
//!   converge with every detection repaired and nothing quarantined.

use std::sync::Arc;

use rvm::segment::{DeviceResolver, MemResolver};
use rvm::{CommitMode, LoadPolicy, Options, RegionDescriptor, Rvm, RvmError, TxnMode, PAGE_SIZE};
use rvm_storage::{Device, FaultClock, FlakyDevice, MemDevice, MirrorDevice};

const SEG: &str = "seg";

/// Resolver serving `SEG` from the given mirror and every other name —
/// notably the checksum sidecar — from plain in-memory devices, mirroring
/// production layouts where the catalog lives beside the data device.
fn mirrored_resolver(mirror: &Arc<MirrorDevice>, side: &MemResolver) -> DeviceResolver {
    let mirror = Arc::clone(mirror);
    let side = side.clone();
    Arc::new(move |name: &str, min_len: u64| {
        if name == SEG {
            if mirror.len()? < min_len {
                mirror.set_len(min_len)?;
            }
            Ok(Arc::clone(&mirror) as Arc<dyn Device>)
        } else {
            side.resolve(name, min_len)
        }
    })
}

fn commit_fill(rvm: &Rvm, region: &rvm::Region, offset: u64, data: &[u8]) {
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, offset, data).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
}

#[test]
fn single_replica_rot_is_detected_and_read_repaired_by_scrub() {
    let log = Arc::new(MemDevice::with_len(1 << 20));
    let a = Arc::new(MemDevice::with_len(1 << 16));
    let b = Arc::new(MemDevice::with_len(1 << 16));
    let mirror = Arc::new(
        MirrorDevice::new(vec![
            Arc::clone(&a) as Arc<dyn Device>,
            Arc::clone(&b) as Arc<dyn Device>,
        ])
        .unwrap(),
    );
    let side = MemResolver::new();
    let rvm = Rvm::initialize(
        Options::new(log)
            .resolver(mirrored_resolver(&mirror, &side))
            .create_if_empty(),
    )
    .unwrap();
    let region = rvm
        .map(&RegionDescriptor::new(SEG, 0, 2 * PAGE_SIZE))
        .unwrap();
    commit_fill(&rvm, &region, 0, &[0x5A; PAGE_SIZE as usize]);
    // Apply the commit to the segment so the catalog covers real data.
    rvm.truncate().unwrap();

    // Silent rot on one replica only; the mirror still reports healthy.
    a.write_at(100, &[0xEE; 8]).unwrap();
    let before = rvm.query();
    assert_eq!((before.replicas_alive, before.replicas_total), (2, 2));

    let report = rvm.scrub().unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.pages_scanned, 2, "{report:?}");
    assert_eq!(report.corruptions_detected, 1, "{report:?}");
    assert_eq!(report.corruptions_repaired, 1, "{report:?}");
    assert_eq!(report.pages_quarantined, 0, "{report:?}");

    // The losing replica was healed in place — both now hold committed
    // bytes — and no replica was dropped over it.
    assert_eq!(&a.snapshot()[100..108], &[0x5A; 8]);
    assert_eq!(&b.snapshot()[100..108], &[0x5A; 8]);
    assert!(mirror.read_repairs() >= 1);
    let q = rvm.query();
    assert_eq!((q.replicas_alive, q.replicas_total), (2, 2));
    assert!(q.stats.pages_scrubbed >= 2, "{:?}", q.stats);
    assert_eq!(q.stats.corruptions_detected, 1, "{:?}", q.stats);
    assert_eq!(q.stats.corruptions_repaired, 1, "{:?}", q.stats);
    assert_eq!(q.stats.regions_quarantined, 0, "{:?}", q.stats);

    // A second pass finds nothing left to repair.
    let report = rvm.scrub().unwrap();
    assert_eq!(report.corruptions_detected, 0, "{report:?}");
    rvm.terminate().unwrap();
}

#[test]
fn both_copies_rot_of_a_wal_resident_page_is_rebuilt_from_the_log() {
    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segs = MemResolver::new();
    let rvm = Rvm::initialize(
        Options::new(log.clone())
            .resolver(segs.clone().into_resolver())
            .create_if_empty(),
    )
    .unwrap();
    let region = rvm
        .map(&RegionDescriptor::new(SEG, 0, 2 * PAGE_SIZE))
        .unwrap();
    commit_fill(&rvm, &region, 0, &[0x5A; PAGE_SIZE as usize]);
    // The owner dies before truncating: the commit's record is still in
    // the live log span, but truncation-on-map already pushed an earlier
    // image (and its checksums) to the segment.
    std::mem::forget(rvm);

    // Rot the only copy of the segment while the machine is down.
    let seg = segs.get(SEG).unwrap();
    seg.write_at(200, &[0xEE; 16]).unwrap();

    // Recovery verifies the page against the catalog, sees the rot, and
    // the redo span rewrites the whole page — the rot never surfaces.
    let rvm = Rvm::initialize(
        Options::new(log)
            .resolver(segs.clone().into_resolver())
            .create_if_empty(),
    )
    .unwrap();
    let report = rvm.recovery_report();
    assert!(report.corrupt_pages_detected >= 1, "{report:?}");
    assert_eq!(
        report.corrupt_pages_detected, report.corrupt_pages_repaired,
        "{report:?}"
    );
    let region = rvm
        .map(&RegionDescriptor::new(SEG, 0, 2 * PAGE_SIZE))
        .unwrap();
    assert_eq!(region.read_vec(200, 16).unwrap(), vec![0x5A; 16]);
    assert_eq!(&segs.get(SEG).unwrap().snapshot()[200..216], &[0x5A; 16]);

    // Scrub agrees: the rebuilt image matches its catalog everywhere.
    let report = rvm.scrub().unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.corruptions_detected, 0, "{report:?}");
    rvm.terminate().unwrap();
}

#[test]
fn unrecoverable_rot_quarantines_only_its_region() {
    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segs = MemResolver::new();
    let boot = || {
        Rvm::initialize(
            Options::new(log.clone())
                .resolver(segs.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap()
    };
    let bad_desc = RegionDescriptor::new("bad", 0, PAGE_SIZE);
    let good_desc = RegionDescriptor::new("good", 0, PAGE_SIZE);

    // Seed committed data, truncate it to the segment, shut down clean:
    // the log holds nothing to rebuild from.
    let rvm = boot();
    let bad = rvm.map(&bad_desc).unwrap();
    commit_fill(&rvm, &bad, 0, &[0xAB; PAGE_SIZE as usize]);
    rvm.truncate().unwrap(); // drain the live span: no redo records remain
    rvm.terminate().unwrap();

    // Rot the only copy while offline. No mirror, no log span: this page
    // is unrecoverable.
    segs.get("bad").unwrap().write_at(321, &[0xEE; 8]).unwrap();

    let rvm = boot();
    // On-demand mapping defers page loads, so the rot is still latent —
    // and there is no pristine VM image to rewrite from.
    let bad = rvm.map_with(&bad_desc, LoadPolicy::OnDemand).unwrap();
    let good = rvm.map(&good_desc).unwrap();

    let report = rvm.scrub().unwrap();
    assert!(!report.is_clean(), "{report:?}");
    assert_eq!(report.pages_quarantined, 1, "{report:?}");
    assert_eq!(report.corruptions_repaired, 0, "{report:?}");

    // The rotted region is read-only degraded…
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    let err = bad.write(&mut txn, 0, &[1]).unwrap_err();
    assert!(matches!(err, RvmError::Media(_)), "{err:?}");
    txn.abort().unwrap();

    // …while the healthy region keeps committing.
    commit_fill(&rvm, &good, 0, &[0x11; 64]);
    assert_eq!(good.read_vec(0, 64).unwrap(), vec![0x11; 64]);

    let q = rvm.query();
    assert_eq!(q.regions_degraded, 1, "{q:?}");
    assert_eq!(q.mapped_regions, 2, "{q:?}");
    assert_eq!(q.stats.regions_quarantined, 1, "{:?}", q.stats);

    // A later pass skips the quarantined region instead of re-counting it.
    let report = rvm.scrub().unwrap();
    assert_eq!(report.pages_quarantined, 0, "{report:?}");
    assert!(report.pages_skipped >= 1, "{report:?}");
}

#[test]
fn seeded_rot_storm_over_a_mirror_converges_with_all_corruptions_repaired() {
    let log = Arc::new(MemDevice::with_len(1 << 20));
    // Both replicas rot independently (separate seeds, no transient
    // failures — those are it_faults territory): every read or write may
    // silently corrupt, and the checksum catalog is the only tripwire.
    let mk = |seed| -> Arc<dyn Device> {
        Arc::new(FlakyDevice::with_clock(
            Arc::new(MemDevice::with_len(1 << 16)),
            FaultClock::seeded_with_rot(seed, 0, 120),
        ))
    };
    let mirror = Arc::new(MirrorDevice::new(vec![mk(11), mk(23)]).unwrap());
    let side = MemResolver::new();
    let rvm = Rvm::initialize(
        Options::new(log)
            .resolver(mirrored_resolver(&mirror, &side))
            .create_if_empty(),
    )
    .unwrap();
    let region = rvm
        .map(&RegionDescriptor::new(SEG, 0, 4 * PAGE_SIZE))
        .unwrap();

    for i in 0..16u64 {
        commit_fill(&rvm, &region, (i % 8) * 512, &[0x30 + i as u8; 512]);
        if i % 5 == 4 {
            rvm.truncate().unwrap();
        }
    }
    rvm.truncate().unwrap();

    // Scrub until two consecutive passes find nothing: the storm keeps
    // rotting reads, but every detection must repair — never quarantine,
    // never surface bad bytes.
    let mut clean_passes = 0;
    for _ in 0..64 {
        let report = rvm.scrub().unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.pages_quarantined, 0, "{report:?}");
        assert_eq!(
            report.corruptions_detected, report.corruptions_repaired,
            "{report:?}"
        );
        if report.corruptions_detected == 0 && report.pages_skipped == 0 {
            clean_passes += 1;
            if clean_passes == 2 {
                break;
            }
        } else {
            clean_passes = 0;
        }
    }
    assert_eq!(clean_passes, 2, "scrub never converged under the storm");

    // VM state survived the storm byte for byte.
    for i in 8..16u64 {
        assert_eq!(
            region.read_vec((i % 8) * 512, 512).unwrap(),
            vec![0x30 + i as u8; 512],
            "cell {i}"
        );
    }
    let q = rvm.query();
    assert_eq!((q.replicas_alive, q.replicas_total), (2, 2), "{q:?}");
    assert_eq!(q.stats.regions_quarantined, 0, "{:?}", q.stats);
    // Cumulative counters: a truncation-time detection is repaired by a
    // *later* scrub pass (which books its own detect/repair pair), so
    // repaired can trail detected globally — but never exceed it.
    assert!(
        q.stats.corruptions_repaired <= q.stats.corruptions_detected,
        "{:?}",
        q.stats
    );
    rvm.terminate().unwrap();
}
