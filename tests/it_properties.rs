//! Property-based tests (proptest) over the core invariants:
//! interval arithmetic, record codecs, crash-prefix semantics,
//! optimization transparency, and allocator disjointness.

mod common {
    include!("lib.rs");
}

use std::collections::BTreeSet;
use std::sync::Arc;

use common::World;
use proptest::prelude::*;
use rvm::log::record::{encode_txn, parse_record, RecordRange};
use rvm::log::status::StatusBlock;
use rvm::ranges::{ByteRange, IntervalMap, RangeSet};
use rvm::segment::{MemResolver, SegmentId, SegmentInfo};
use rvm::{CommitMode, Options, RegionDescriptor, Rvm, Tuning, TxnMode, PAGE_SIZE};
use rvm_storage::{CrashPlan, FaultDevice, MemDevice};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RangeSet against a naive per-byte model: coverage identical, the
    /// `newly` report exactly the bytes that were new, and the set stays
    /// coalesced.
    #[test]
    fn rangeset_matches_naive_model(ops in prop::collection::vec((0u64..500, 1u64..60), 1..40)) {
        let mut set = RangeSet::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for (start, len) in ops {
            let newly = set.insert(ByteRange::at(start, len));
            let mut newly_bytes: BTreeSet<u64> = BTreeSet::new();
            for r in &newly {
                for b in r.start..r.end {
                    prop_assert!(newly_bytes.insert(b), "newly ranges overlap");
                }
            }
            for b in start..start + len {
                let was_new = model.insert(b);
                prop_assert_eq!(was_new, newly_bytes.contains(&b), "byte {}", b);
            }
        }
        // Coverage identical.
        let covered: BTreeSet<u64> = set
            .iter()
            .flat_map(|r| r.start..r.end)
            .collect();
        prop_assert_eq!(&covered, &model);
        // Coalesced: consecutive ranges have gaps.
        let ranges: Vec<ByteRange> = set.iter().collect();
        for pair in ranges.windows(2) {
            prop_assert!(pair[0].end < pair[1].start);
        }
        prop_assert_eq!(set.total_len(), model.len() as u64);
    }

    /// IntervalMap newest-wins equals a naive reverse-apply model.
    #[test]
    fn interval_map_matches_naive_model(writes in prop::collection::vec((0u64..300, prop::collection::vec(any::<u8>(), 1..40)), 1..20)) {
        // Newest first into the map...
        let mut map = IntervalMap::new();
        for (start, data) in writes.iter().rev() {
            map.insert_if_uncovered(*start, data);
        }
        // ...equals applying oldest first over an array.
        let mut model = vec![0u8; 400];
        for (start, data) in &writes {
            model[*start as usize..*start as usize + data.len()].copy_from_slice(data);
        }
        let mut got = vec![0u8; 400];
        map.overlay_onto(0, &mut got);
        // Bytes never written stay 0 in both.
        prop_assert_eq!(got, model);
    }

    /// Record encode/decode round-trips arbitrary range sets.
    #[test]
    fn record_codec_round_trips(
        seq in 1u64..u64::MAX / 2,
        tid in any::<u64>(),
        ranges in prop::collection::vec(
            (0u32..8, 0u64..1_000_000, prop::collection::vec(any::<u8>(), 0..300)),
            0..8
        )
    ) {
        let ranges: Vec<RecordRange> = ranges
            .into_iter()
            .map(|(seg, offset, data)| RecordRange {
                seg: SegmentId::new(seg),
                offset,
                data,
            })
            .collect();
        let buf = encode_txn(seq, tid, &ranges);
        prop_assert_eq!(buf.len() % 512, 0);
        let (header, decoded) = parse_record(&buf).expect("valid record parses");
        prop_assert_eq!(header.seq, seq);
        let decoded = decoded.expect("txn record");
        prop_assert_eq!(decoded.tid, tid);
        prop_assert_eq!(decoded.ranges, ranges);
    }

    /// A bit flip anywhere in the live portion of a record is detected.
    #[test]
    fn record_corruption_is_always_detected(
        data in prop::collection::vec(any::<u8>(), 1..200),
        flip_pos in any::<prop::sample::Index>(),
        flip_bit in 0u8..8
    ) {
        let ranges = vec![RecordRange { seg: SegmentId::new(0), offset: 64, data }];
        let mut buf = encode_txn(5, 9, &ranges);
        let header = rvm::log::record::parse_header(&buf).unwrap();
        let live = 40 + header.payload_len as usize; // header + payload
        let pos = flip_pos.index(live);
        buf[pos] ^= 1 << flip_bit;
        prop_assert!(parse_record(&buf).is_none(), "flip at {} undetected", pos);
    }

    /// Status blocks round-trip arbitrary segment tables.
    #[test]
    fn status_block_round_trips(
        head in 0u64..1_000_000,
        used in 0u64..1_000_000,
        names in prop::collection::vec("[a-z]{1,24}", 0..10)
    ) {
        let mut sb = StatusBlock::fresh(1 << 20);
        sb.head = head;
        sb.tail = head + used;
        for (i, name) in names.iter().enumerate() {
            sb.segments.push(SegmentInfo {
                id: SegmentId::new(i as u32),
                name: name.clone(),
                min_len: i as u64 * 4096,
            });
        }
        let decoded = StatusBlock::decode(&sb.encode()).expect("round trip");
        prop_assert_eq!(decoded, sb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-prefix property with randomized workloads: after a crash at
    /// an arbitrary byte budget, recovery yields the state after some
    /// prefix of the committed transactions, and every acked commit is
    /// included.
    #[test]
    fn random_workload_crash_yields_a_commit_prefix(
        writes in prop::collection::vec((0u64..(PAGE_SIZE - 64), 1u64..64, any::<u8>()), 1..25),
        crash_frac in 0.0f64..1.0
    ) {
        // Dry run to find the total byte volume.
        let total = {
            let segments = MemResolver::new();
            let inner = Arc::new(MemDevice::with_len(1 << 20));
            let fault = Arc::new(FaultDevice::recording(inner));
            let rvm = Rvm::initialize(
                Options::new(fault.clone())
                    .resolver(segments.clone().into_resolver())
                    .create_if_empty(),
            ).unwrap();
            let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).unwrap();
            for (i, (off, len, byte)) in writes.iter().enumerate() {
                let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                region.write(&mut txn, *off, &vec![*byte; *len as usize]).unwrap();
                region.put_u64(&mut txn, PAGE_SIZE - 8, i as u64 + 1).unwrap();
                txn.commit(CommitMode::Flush).unwrap();
            }
            let n = fault.bytes_written();
            rvm.terminate().unwrap();
            n
        };
        let crash_at = (total as f64 * crash_frac) as u64;

        // Crash run.
        let segments = MemResolver::new();
        let inner = Arc::new(MemDevice::with_len(1 << 20));
        let fault = Arc::new(FaultDevice::new(inner.clone(), CrashPlan::torn_at(crash_at)));
        let mut acked = 0u64;
        (|| {
            let rvm = Rvm::initialize(
                Options::new(fault.clone())
                    .resolver(segments.clone().into_resolver())
                    .create_if_empty(),
            ).ok()?;
            let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).ok()?;
            for (i, (off, len, byte)) in writes.iter().enumerate() {
                let mut txn = rvm.begin_transaction(TxnMode::Restore).ok()?;
                region.write(&mut txn, *off, &vec![*byte; *len as usize]).ok()?;
                region.put_u64(&mut txn, PAGE_SIZE - 8, i as u64 + 1).ok()?;
                txn.commit(CommitMode::Flush).ok()?;
                acked = i as u64 + 1;
            }
            std::mem::forget(rvm);
            Some(())
        })();

        // Recover and compare against replaying the recovered prefix.
        let rvm = Rvm::initialize(
            Options::new(inner)
                .resolver(segments.clone().into_resolver())
                .create_if_empty(),
        ).unwrap();
        let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).unwrap();
        let k = region.get_u64(PAGE_SIZE - 8).unwrap();
        prop_assert!(k >= acked, "acked {} recovered {}", acked, k);
        prop_assert!(k <= writes.len() as u64);
        let mut model = vec![0u8; PAGE_SIZE as usize];
        for (off, len, byte) in writes.iter().take(k as usize) {
            model[*off as usize..(*off + *len) as usize].fill(*byte);
        }
        model[(PAGE_SIZE - 8) as usize..].copy_from_slice(&k.to_le_bytes());
        let got = region.read_vec(0, PAGE_SIZE).unwrap();
        prop_assert_eq!(got, model);
    }

    /// Inter-transaction optimization never changes recovered state.
    #[test]
    fn inter_optimization_is_semantically_transparent(
        writes in prop::collection::vec((0u64..8, 8u64..200, any::<u8>()), 1..30)
    ) {
        let mut images = Vec::new();
        for inter in [true, false] {
            let world = World::new(1 << 20);
            {
                let rvm = world.boot_tuned(Tuning {
                    inter_optimization: inter,
                    ..Tuning::default()
                });
                let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).unwrap();
                for (obj, len, byte) in &writes {
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                    region.write(&mut txn, obj * 256, &vec![*byte; *len as usize]).unwrap();
                    txn.commit(CommitMode::NoFlush).unwrap();
                }
                rvm.flush().unwrap();
                std::mem::forget(rvm); // crash
            }
            let rvm = world.boot();
            let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).unwrap();
            images.push(region.read_vec(0, PAGE_SIZE).unwrap());
        }
        prop_assert_eq!(&images[0], &images[1]);
    }

    /// Allocator churn: live allocations never overlap and keep their
    /// contents byte-exact.
    #[test]
    fn allocator_never_overlaps(ops in prop::collection::vec((any::<bool>(), 1u64..400, any::<u8>()), 1..60)) {
        use rvm_alloc::RvmHeap;
        let world = World::new(4 << 20);
        let rvm = world.boot();
        let region = rvm.map(&RegionDescriptor::new("heap", 0, 32 * PAGE_SIZE)).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let heap = RvmHeap::format(&region, &mut txn).unwrap();
        let mut live: Vec<(u64, u64, u8)> = Vec::new();
        for (i, (do_free, size, tag)) in ops.into_iter().enumerate() {
            if do_free && !live.is_empty() {
                let (off, _, _) = live.remove(i % live.len());
                heap.free(&region, &mut txn, off).unwrap();
            } else if let Ok(off) = heap.alloc(&region, &mut txn, size) {
                region.write(&mut txn, off, &vec![tag; size as usize]).unwrap();
                // No overlap with any live allocation.
                for (o, s, _) in &live {
                    prop_assert!(off + size <= *o || *o + *s <= off,
                        "[{},{}) overlaps [{},{})", off, off + size, o, o + s);
                }
                live.push((off, size, tag));
            }
        }
        for (off, size, tag) in &live {
            prop_assert_eq!(region.read_vec(*off, *size).unwrap(), vec![*tag; *size as usize]);
        }
        txn.commit(CommitMode::Flush).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// WAL wraparound invariant: any sequence of appends and truncations
    /// leaves a log whose forward scan returns exactly the un-truncated
    /// suffix of appended records, in order.
    #[test]
    fn wal_scan_always_returns_the_live_suffix(
        ops in prop::collection::vec((any::<bool>(), 50u64..900), 1..60)
    ) {
        use rvm::log::record::RecordRange;
        use rvm::log::status::LOG_AREA_START;
        use rvm::log::wal::{scan_forward, Wal};
        use std::sync::Arc as StdArc;

        let area = 16 * 1024u64;
        let dev: StdArc<dyn rvm_storage::Device> =
            StdArc::new(MemDevice::with_len(LOG_AREA_START + area));
        let mut wal = Wal::new(dev.clone(), area, 0, 0, 1, 1);
        let mut live: Vec<u64> = Vec::new(); // tids of live records
        let mut tid = 0u64;
        for (truncate, len) in ops {
            if truncate {
                // Simulate a truncation consuming everything.
                wal.advance_head(wal.tail(), wal.next_seq());
                live.clear();
            } else {
                tid += 1;
                let ranges = vec![RecordRange {
                    seg: SegmentId::new(0),
                    offset: tid * 8,
                    data: vec![tid as u8; len as usize],
                }];
                match wal.append_txn(tid, &ranges) {
                    Ok(_) => live.push(tid),
                    Err(_) => {
                        // Full: truncate and retry once (always fits then).
                        wal.advance_head(wal.tail(), wal.next_seq());
                        live.clear();
                        wal.append_txn(tid, &ranges).unwrap();
                        live.push(tid);
                    }
                }
            }
            let scan = scan_forward(dev.as_ref(), area, wal.head(), wal.seq_at_head(), None)
                .unwrap();
            let tids: Vec<u64> = scan.records.iter().map(|(_, r)| r.tid).collect();
            prop_assert_eq!(&tids, &live);
            prop_assert_eq!(scan.tail, wal.tail());
            prop_assert_eq!(scan.next_seq, wal.next_seq());
        }
    }

    /// Nested transactions against a flat model: an arbitrary tree of
    /// enter/write/commit-child/abort-child operations produces exactly
    /// the state of the equivalent model executed on a plain array.
    #[test]
    fn nested_transactions_match_a_flat_model(
        ops in prop::collection::vec((0u8..4, 0u64..56, any::<u8>()), 1..50)
    ) {
        use rvm_nest::NestedTxn;

        let world = World::new(1 << 20);
        let rvm = world.boot();
        let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).unwrap();
        let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();

        // Model: a stack of (array snapshot) per level.
        let mut model = vec![0u8; 64 * 8];
        let mut snapshots: Vec<Vec<u8>> = Vec::new();

        for (op, slot, value) in ops {
            match op {
                0 => {
                    txn.enter();
                    snapshots.push(model.clone());
                }
                1 => {
                    let data = vec![value; 8];
                    txn.write(&region, slot * 8, &data).unwrap();
                    model[(slot * 8) as usize..(slot * 8 + 8) as usize].fill(value);
                }
                2 => {
                    if txn.depth() > 1 {
                        txn.commit_child().unwrap();
                        snapshots.pop();
                    }
                }
                _ => {
                    if txn.depth() > 1 {
                        txn.abort_child().unwrap();
                        model = snapshots.pop().unwrap();
                    }
                }
            }
            let got = region.read_vec(0, 64 * 8).unwrap();
            prop_assert_eq!(&got, &model, "after op {}", op);
        }
        // Close any levels the op stream left open, committing them.
        while txn.depth() > 1 {
            txn.commit_child().unwrap();
            snapshots.pop();
        }
        txn.commit(CommitMode::Flush).unwrap();
        prop_assert_eq!(region.read_vec(0, 64 * 8).unwrap(), model);
    }

    /// State-machine harness for the unlogged-write checker: arbitrary
    /// *legal* histories — declared writes, commits, aborts, up to three
    /// interleaved transactions — never trip the checker (panic mode makes
    /// any false positive fatal), and the log left behind passes the full
    /// WAL invariant verification.
    #[test]
    fn checker_never_fires_on_legal_histories(
        ops in prop::collection::vec(
            (0u8..4, any::<prop::sample::Index>(), 0u64..2, 0u64..(PAGE_SIZE - 64), 1u64..64, any::<u8>()),
            1..60
        )
    ) {
        let world = World::new(4 << 20);
        let rvm = world.boot_tuned(Tuning {
            check_unlogged_writes: true,
            // Overlapping declarations across transactions are legal
            // (serializability is the application's problem, §3.1).
            check_range_conflicts: false,
            panic_on_violation: true,
            ..Tuning::default()
        });
        let regions = [
            rvm.map(&RegionDescriptor::new("a", 0, PAGE_SIZE)).unwrap(),
            rvm.map(&RegionDescriptor::new("b", 0, PAGE_SIZE)).unwrap(),
        ];
        let mut live: Vec<rvm::Transaction> = Vec::new();
        for (op, pick, reg, offset, len, byte) in ops {
            match op {
                0 if live.len() < 3 => {
                    live.push(rvm.begin_transaction(TxnMode::Restore).unwrap());
                }
                1 if !live.is_empty() => {
                    let t = pick.index(live.len());
                    regions[reg as usize]
                        .write(&mut live[t], offset, &vec![byte; len as usize])
                        .unwrap();
                }
                2 if !live.is_empty() => {
                    let t = pick.index(live.len());
                    live.remove(t).commit(CommitMode::Flush).unwrap();
                }
                3 if !live.is_empty() => {
                    let t = pick.index(live.len());
                    live.remove(t).abort().unwrap();
                }
                _ => {}
            }
        }
        for txn in live {
            txn.commit(CommitMode::Flush).unwrap();
        }
        let q = rvm.query();
        prop_assert_eq!(q.stats.check_unlogged_writes, 0);
        prop_assert!(q.check_violations.is_empty(), "{:?}", q.check_violations);

        std::mem::forget(rvm);
        let report = rvm_check::verify(
            &(world.log.clone() as Arc<dyn rvm_storage::Device>),
        ).unwrap();
        prop_assert!(report.is_clean(), "{:?}", report.findings);
    }

    /// Intra-transaction optimization is semantically transparent: the
    /// recovered state is identical with it on or off.
    #[test]
    fn intra_optimization_is_semantically_transparent(
        writes in prop::collection::vec((0u64..480, 1u64..64, any::<u8>()), 1..20)
    ) {
        let mut images = Vec::new();
        for intra in [true, false] {
            let world = World::new(1 << 20);
            {
                let rvm = world.boot_tuned(Tuning {
                    intra_optimization: intra,
                    ..Tuning::default()
                });
                let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).unwrap();
                let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                for (off, len, byte) in &writes {
                    // Redundant declaration then the write (write declares
                    // again): classic defensive pattern.
                    txn.set_range(&region, *off, *len).unwrap();
                    region.write(&mut txn, *off, &vec![*byte; *len as usize]).unwrap();
                }
                txn.commit(CommitMode::Flush).unwrap();
                std::mem::forget(rvm);
            }
            let rvm = world.boot();
            let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).unwrap();
            images.push(region.read_vec(0, PAGE_SIZE).unwrap());
        }
        prop_assert_eq!(&images[0], &images[1]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The recoverable hash map against std's HashMap: arbitrary
    /// put/remove sequences agree, and the committed result survives a
    /// crash.
    #[test]
    fn recoverable_map_matches_std_hashmap(
        ops in prop::collection::vec(
            (any::<bool>(), 0u8..24, prop::collection::vec(any::<u8>(), 0..20)),
            1..60
        )
    ) {
        use rvm_alloc::RvmHeap;
        use rvm_ds::RecoverableMap;
        use std::collections::HashMap;

        let world = World::new(4 << 20);
        let base;
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        {
            let rvm = world.boot();
            let region = rvm
                .map(&RegionDescriptor::new("meta", 0, 64 * PAGE_SIZE))
                .unwrap();
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            let heap = RvmHeap::format(&region, &mut txn).unwrap();
            let map = RecoverableMap::create(&region, &heap, &mut txn, 8).unwrap();
            base = map.base();
            for (remove, key_byte, value) in &ops {
                let key = vec![*key_byte];
                if *remove {
                    let was = map.remove(&region, &heap, &mut txn, &key).unwrap();
                    prop_assert_eq!(was, model.remove(&key).is_some());
                } else {
                    map.put(&region, &heap, &mut txn, &key, value).unwrap();
                    model.insert(key, value.clone());
                }
                prop_assert_eq!(map.len(&region).unwrap(), model.len() as u64);
            }
            txn.commit(CommitMode::Flush).unwrap();
            std::mem::forget(rvm); // crash
        }
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("meta", 0, 64 * PAGE_SIZE))
            .unwrap();
        let map = RecoverableMap::open(&region, base).unwrap();
        let mut got = map.entries(&region).unwrap();
        got.sort();
        let mut want: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// The GC heap: an arbitrary DAG built through root slots survives a
    /// collection with exactly the reachable objects intact.
    #[test]
    fn gc_preserves_exactly_the_reachable_graph(
        objects in prop::collection::vec(
            (prop::collection::vec(any::<prop::sample::Index>(), 0..3), 1u8..255),
            1..30
        ),
        root_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..5)
    ) {
        use rvm_gc::{ObjRef, PersistentHeap};

        let world = World::new(8 << 20);
        let rvm = world.boot();
        let heap = PersistentHeap::open(&rvm, "heap", 512 * 1024).unwrap();

        // Build objects whose refs point at earlier objects (a DAG).
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let mut handles: Vec<ObjRef> = Vec::new();
        for (ref_picks, tag) in &objects {
            let refs: Vec<ObjRef> = ref_picks
                .iter()
                .filter(|_| !handles.is_empty())
                .map(|ix| handles[ix.index(handles.len())])
                .collect();
            let h = heap.alloc(&mut txn, &refs, &[*tag]).unwrap();
            handles.push(h);
        }
        // Pick roots.
        let mut root_tags = Vec::new();
        for (slot, pick) in root_picks.iter().enumerate() {
            let h = handles[pick.index(handles.len())];
            heap.set_root(&mut txn, slot as u64, h).unwrap();
            root_tags.push(h);
        }
        txn.commit(CommitMode::Flush).unwrap();

        // Model: the reachable multiset of tags via DFS over offsets.
        fn reach(heap: &PersistentHeap, at: ObjRef, seen: &mut std::collections::HashSet<u64>, tags: &mut Vec<u8>) {
            if at.is_null() || !seen.insert(at.raw()) {
                return;
            }
            tags.push(heap.payload(at).unwrap()[0]);
            for r in heap.refs(at).unwrap() {
                reach(heap, r, seen, tags);
            }
        }
        let mut want = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for slot in 0..root_picks.len() as u64 {
            reach(&heap, heap.root(slot).unwrap(), &mut seen, &mut want);
        }
        want.sort_unstable();

        let (live, _) = heap.collect(&rvm).unwrap();
        prop_assert_eq!(live as usize, want.len());

        let mut got = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for slot in 0..root_picks.len() as u64 {
            reach(&heap, heap.root(slot).unwrap(), &mut seen, &mut got);
        }
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
