//! In-memory device.

use parking_lot::RwLock;

use crate::{Device, DeviceError, Result};

/// A device backed by an in-memory byte image.
///
/// Useful for unit tests and for simulation backends; `sync` is a no-op
/// because the image is always "durable" for the lifetime of the process.
/// Cloning is not provided — share it via [`std::sync::Arc`] so all handles
/// observe the same image, or snapshot it with [`MemDevice::snapshot`].
///
/// # Examples
///
/// ```
/// use rvm_storage::{Device, MemDevice};
///
/// let dev = MemDevice::with_len(8);
/// dev.write_at(2, b"abc").unwrap();
/// let mut buf = [0u8; 3];
/// dev.read_at(2, &mut buf).unwrap();
/// assert_eq!(&buf, b"abc");
/// ```
#[derive(Debug, Default)]
pub struct MemDevice {
    image: RwLock<Vec<u8>>,
}

impl MemDevice {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a zero-filled device of the given length.
    pub fn with_len(len: u64) -> Self {
        Self {
            image: RwLock::new(vec![0; len as usize]),
        }
    }

    /// Creates a device from an existing image.
    pub fn from_image(image: Vec<u8>) -> Self {
        Self {
            image: RwLock::new(image),
        }
    }

    /// Returns a copy of the current image.
    pub fn snapshot(&self) -> Vec<u8> {
        self.image.read().clone()
    }

    /// Replaces the image wholesale (used by crash simulation to "reboot"
    /// from a durable snapshot).
    pub fn restore(&self, image: Vec<u8>) {
        *self.image.write() = image;
    }
}

fn check_bounds(offset: u64, len: usize, device_len: usize) -> Result<()> {
    let end = offset
        .checked_add(len as u64)
        .ok_or(DeviceError::OutOfBounds {
            offset,
            len: len as u64,
            device_len: device_len as u64,
        })?;
    if end > device_len as u64 {
        return Err(DeviceError::OutOfBounds {
            offset,
            len: len as u64,
            device_len: device_len as u64,
        });
    }
    Ok(())
}

impl Device for MemDevice {
    fn len(&self) -> Result<u64> {
        Ok(self.image.read().len() as u64)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let image = self.image.read();
        check_bounds(offset, buf.len(), image.len())?;
        let start = offset as usize;
        buf.copy_from_slice(&image[start..start + buf.len()]);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut image = self.image.write();
        check_bounds(offset, data.len(), image.len())?;
        let start = offset as usize;
        image[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.image.write().resize(len as usize, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let dev = MemDevice::with_len(16);
        dev.write_at(0, &[1, 2, 3, 4]).unwrap();
        dev.write_at(12, &[9, 9, 9, 9]).unwrap();
        let mut buf = [0u8; 16];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf[..4], [1, 2, 3, 4]);
        assert_eq!(buf[12..], [9, 9, 9, 9]);
    }

    #[test]
    fn out_of_bounds_write_is_rejected() {
        let dev = MemDevice::with_len(4);
        let err = dev.write_at(2, &[0; 4]).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfBounds { .. }));
        let err = dev.read_at(5, &mut [0; 1]).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfBounds { .. }));
    }

    #[test]
    fn offset_overflow_is_rejected() {
        let dev = MemDevice::with_len(4);
        let err = dev.write_at(u64::MAX, &[1]).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfBounds { .. }));
    }

    #[test]
    fn set_len_extends_with_zeros() {
        let dev = MemDevice::with_len(2);
        dev.write_at(0, &[7, 7]).unwrap();
        dev.set_len(4).unwrap();
        let mut buf = [0xffu8; 4];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [7, 7, 0, 0]);
        assert_eq!(dev.len().unwrap(), 4);
    }

    #[test]
    fn set_len_truncates() {
        let dev = MemDevice::with_len(8);
        dev.set_len(2).unwrap();
        assert_eq!(dev.len().unwrap(), 2);
        assert!(dev.read_at(0, &mut [0; 3]).is_err());
    }

    #[test]
    fn snapshot_and_restore() {
        let dev = MemDevice::with_len(4);
        dev.write_at(0, &[1, 2, 3, 4]).unwrap();
        let snap = dev.snapshot();
        dev.write_at(0, &[9, 9, 9, 9]).unwrap();
        dev.restore(snap);
        let mut buf = [0u8; 4];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn empty_checks() {
        let dev = MemDevice::new();
        assert!(dev.is_empty().unwrap());
        dev.set_len(1).unwrap();
        assert!(!dev.is_empty().unwrap());
    }
}
