//! Pipelined log writer: flush-commit throughput with double-buffered
//! asynchronous submission versus plain group commit, over the virtual
//! disk clock.
//!
//! Each cell boots a fresh RVM over a `circa_1990` simulated log disk
//! and splits a fixed transaction budget across N committer threads on
//! disjoint pages. Both modes share one force per batch; the difference
//! is *when* the force runs. Plain group commit fills, forces, and waits
//! before the next batch may fill. The pipeline submits buffer A's force
//! and fills buffer B while it spins, so record serialization rides for
//! free inside the force window and queued forces earn the controller's
//! tagged-command discount. The per-cell disk stats expose the
//! mechanism: `overlapped_syncs` counts forces submitted while the
//! mechanism was still busy (always zero for the serial loop), and the
//! interval trace proves at least one force's service span intersected a
//! record transfer on the virtual timeline.
//!
//! Usage: `log_pipeline [--quick] [--check] [--txns N]`
//!
//! Writes `BENCH_log_pipeline.json` (machine-readable, at the repo
//! root) and `results/log_pipeline.txt` (the table). `--check` exits
//! non-zero unless, at 16 threads, the pipelined writer beats grouped
//! (same batch cap) by at least 1.2x and exceeds 748 txn/s — the CI
//! perf-smoke gate.

use std::sync::{Arc, Barrier};

use rvm::segment::DeviceResolver;
use rvm::{CommitMode, Options, Rvm, Tuning, TxnMode, PAGE_SIZE};
use rvm_storage::{MemDevice, NullDevice};
use simclock::Clock;
use simdisk::{DiskOp, DiskParams, SimDisk};

/// Both modes use the same modest batch cap so the comparison isolates
/// pipelining: with the cap below the committer count, consecutive
/// batches exist to overlap at all.
const BATCH_CAP: usize = 8;

/// One measured cell of the sweep.
struct Cell {
    mode: &'static str,
    threads: u64,
    txns: u64,
    io_ms: f64,
    txn_per_s: f64,
    log_forces: u64,
    flush_commits: u64,
    mean_batch: f64,
    pipeline_submits: u64,
    forces_in_flight_hw: u64,
    pipeline_stall_ms: f64,
    overlapped_syncs: u64,
    forces_overlapping_writes: u64,
}

/// Runs `total` flush commits split across `threads` threads, returning
/// the cell. `pipelined` toggles `Tuning::log_pipeline`; group commit
/// itself is on in both modes.
fn run_cell(threads: u64, total: u64, pipelined: bool) -> Cell {
    let clock = Clock::new();
    let log = Arc::new(SimDisk::new(
        Arc::new(MemDevice::with_len(256 << 20)),
        clock.clone(),
        DiskParams::circa_1990(),
    ));
    let data = Arc::new(SimDisk::new(
        Arc::new(NullDevice::new(0)),
        clock.clone(),
        DiskParams::circa_1990(),
    ));
    let data_for_resolver: Arc<dyn rvm_storage::Device> = data;
    let resolver: DeviceResolver = Arc::new(move |_name, min_len| {
        if data_for_resolver.len()? < min_len {
            data_for_resolver.set_len(min_len)?;
        }
        Ok(data_for_resolver.clone())
    });
    let tuning = Tuning {
        log_pipeline: pipelined,
        group_commit_max_txns: BATCH_CAP,
        // A short accumulation window (wall-clock; the virtual disk is
        // not charged) so concurrent committers reliably share a batch.
        group_commit_wait_us: 300,
        // The resolver aliases every name onto one data disk; checksum
        // sidecars are off so catalog writes cannot land on it.
        segment_checksums: false,
        ..Tuning::default()
    };
    let rvm = Arc::new(
        Rvm::initialize(
            Options::new(log.clone())
                .resolver(resolver)
                .tuning(tuning)
                .create_if_empty(),
        )
        .expect("initialize RVM over simulated devices"),
    );
    let region = rvm
        .map(&rvm::RegionDescriptor::new("bench", 0, threads * PAGE_SIZE))
        .expect("map the benchmark region");

    let before_io = clock.io_time();
    let before_stats = rvm.stats();
    let before_disk = log.stats();
    log.set_interval_trace(true);

    let per_thread = total / threads;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let rvm = Arc::clone(&rvm);
            let region = region.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut payload = [0u8; 256];
                for i in 0..per_thread {
                    payload[..8].copy_from_slice(&(t * per_thread + i).to_le_bytes());
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
                    region
                        .write(&mut txn, t * PAGE_SIZE + (i % 8) * 256, &payload)
                        .expect("write");
                    txn.commit(CommitMode::Flush).expect("commit");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("committer thread");
    }

    // Mechanical overlap evidence from the virtual timeline: forces
    // whose `[start, end)` span intersects a record transfer.
    let intervals = log.take_intervals();
    log.set_interval_trace(false);
    let forces_overlapping_writes = intervals
        .iter()
        .filter(|s| s.op == DiskOp::Sync)
        .filter(|s| {
            intervals
                .iter()
                .any(|w| w.op == DiskOp::Write && s.overlaps(w))
        })
        .count() as u64;

    let txns = per_thread * threads;
    let io_ms = (clock.io_time() - before_io).as_millis_f64();
    let stats = rvm.stats().delta_since(&before_stats);
    let disk = log.stats().delta_since(&before_disk);
    Cell {
        mode: if pipelined { "pipelined" } else { "grouped" },
        threads,
        txns,
        io_ms,
        txn_per_s: txns as f64 / (io_ms / 1000.0),
        log_forces: stats.log_forces,
        flush_commits: stats.flush_commits,
        mean_batch: stats.mean_group_batch(),
        pipeline_submits: stats.pipeline_submits,
        forces_in_flight_hw: stats.forces_in_flight_hw,
        pipeline_stall_ms: stats.pipeline_stall_ns as f64 / 1e6,
        overlapped_syncs: disk.overlapped_syncs,
        forces_overlapping_writes,
    }
}

fn json_cell(c: &Cell) -> String {
    format!(
        concat!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"txns\": {}, ",
            "\"io_ms\": {:.3}, \"txn_per_s\": {:.2}, \"log_forces\": {}, ",
            "\"flush_commits\": {}, \"mean_batch\": {:.2}, ",
            "\"pipeline_submits\": {}, \"forces_in_flight_hw\": {}, ",
            "\"pipeline_stall_ms\": {:.3}, \"overlapped_syncs\": {}, ",
            "\"forces_overlapping_writes\": {}}}"
        ),
        c.mode,
        c.threads,
        c.txns,
        c.io_ms,
        c.txn_per_s,
        c.log_forces,
        c.flush_commits,
        c.mean_batch,
        c.pipeline_submits,
        c.forces_in_flight_hw,
        c.pipeline_stall_ms,
        c.overlapped_syncs,
        c.forces_overlapping_writes,
    )
}

fn main() {
    let mut total: u64 = 2048;
    let mut threads: Vec<u64> = vec![1, 2, 4, 8, 16];
    let mut check = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                total = 512;
                threads = vec![4, 16];
            }
            "--check" => check = true,
            "--txns" => {
                i += 1;
                total = args[i].parse().expect("--txns N");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let header = format!(
        "{:<10} {:>7} {:>9} {:>11} {:>8} {:>10} {:>8} {:>8} {:>9} {:>9}",
        "mode",
        "threads",
        "txn/s",
        "io_ms",
        "forces",
        "mean_batch",
        "submits",
        "hw",
        "ovl_sync",
        "ovl_f/w"
    );
    println!("{header}");
    let mut table = String::new();
    table.push_str(&format!(
        "pipelined vs grouped log writer, {total} flush commits per cell, \
         batch cap {BATCH_CAP}, circa-1990 disk\n\n{header}\n"
    ));
    let mut cells: Vec<Cell> = Vec::new();
    for &pipelined in &[false, true] {
        for &t in &threads {
            let c = run_cell(t, total, pipelined);
            let line = format!(
                "{:<10} {:>7} {:>9.1} {:>11.1} {:>8} {:>10.2} {:>8} {:>8} {:>9} {:>9}",
                c.mode,
                c.threads,
                c.txn_per_s,
                c.io_ms,
                c.log_forces,
                c.mean_batch,
                c.pipeline_submits,
                c.forces_in_flight_hw,
                c.overlapped_syncs,
                c.forces_overlapping_writes
            );
            println!("{line}");
            table.push_str(&line);
            table.push('\n');
            cells.push(c);
        }
    }

    let gate_threads = *threads.last().expect("non-empty sweep");
    let find = |mode: &str| {
        cells
            .iter()
            .find(|c| c.mode == mode && c.threads == gate_threads)
    };
    let piped = find("pipelined").expect("pipelined gate cell");
    let grouped = find("grouped").expect("grouped gate cell");
    let speedup = if grouped.txn_per_s > 0.0 {
        piped.txn_per_s / grouped.txn_per_s
    } else {
        0.0
    };
    let summary = format!(
        "\npipelined vs grouped at {gate_threads} threads: {speedup:.2}x \
         ({:.1} vs {:.1} txn/s)\n",
        piped.txn_per_s, grouped.txn_per_s
    );
    println!("{summary}");
    table.push_str(&summary);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"log_pipeline\",\n");
    json.push_str(&format!("  \"total_txns\": {total},\n"));
    json.push_str(&format!("  \"batch_cap\": {BATCH_CAP},\n"));
    json.push_str("  \"disk\": \"circa_1990\",\n");
    json.push_str(&format!(
        "  \"speedup_at_{gate_threads}_threads\": {speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"pipelined_txn_per_s_at_{gate_threads}_threads\": {:.2},\n",
        piped.txn_per_s
    ));
    json.push_str("  \"cells\": [\n");
    let body: Vec<String> = cells.iter().map(json_cell).collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_log_pipeline.json", &json).expect("write JSON");
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/log_pipeline.txt", &table).expect("write table");

    // The overlap claims are structural, not thresholds: check them on
    // every run so a regression cannot hide behind a still-passing
    // throughput number.
    assert!(
        piped.overlapped_syncs > 0,
        "pipelined cell never queued a force behind a busy mechanism"
    );
    assert!(
        piped.forces_overlapping_writes > 0,
        "no pipelined force overlapped record serialization"
    );
    assert_eq!(
        grouped.overlapped_syncs, 0,
        "the serial force loop cannot queue forces"
    );

    if check && (speedup < 1.2 || piped.txn_per_s <= 748.0) {
        eprintln!(
            "FAIL: pipelined@{gate_threads} is {:.1} txn/s at {speedup:.2}x grouped \
             (need > 748 txn/s and >= 1.2x)",
            piped.txn_per_s
        );
        std::process::exit(1);
    }
}
