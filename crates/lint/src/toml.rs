//! A minimal TOML subset parser — just enough for `lockorder.toml` and
//! `lint-baseline.toml`, which the tool itself writes.
//!
//! Supported: comments, `[table]`, `[[array-of-tables]]`, and
//! `key = value` with string / integer / boolean / single-line array
//! values. This is deliberately not a general TOML implementation; the
//! two config files stay within this subset by construction (the
//! baseline is machine-written, the lock order is validated on load).

use std::fmt;

/// A TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<Val>),
}

impl Val {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Val]> {
        match self {
            Val::List(v) => Some(v),
            _ => None,
        }
    }
}

/// One table: its header path and key/value pairs, in file order.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub name: String,
    pub entries: Vec<(String, Val)>,
}

impl Table {
    pub fn get(&self, key: &str) -> Option<&Val> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Val::as_str)
    }
}

/// A parsed document: the root table plus named tables in order.
/// `[[x]]` produces one `Table` per occurrence, all named `x`.
#[derive(Debug, Default)]
pub struct Doc {
    pub root: Table,
    pub tables: Vec<Table>,
}

impl Doc {
    /// All tables named `name` (array-of-tables accessor).
    pub fn all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Table> + 'a {
        self.tables.iter().filter(move |t| t.name == name)
    }
}

/// Parse error with 1-based line number.
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

/// Strips a trailing comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(s: &str, line: usize) -> Result<Val, ParseError> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| err(line, "unterminated string"))?;
        let mut out = String::new();
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other);
                    }
                    None => return Err(err(line, "dangling escape")),
                }
            } else {
                out.push(c);
            }
        }
        return Ok(Val::Str(out));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(line, "arrays must close on the same line"))?;
        let mut items = Vec::new();
        // Split on commas outside strings.
        let mut depth_str = false;
        let mut escaped = false;
        let mut cur = String::new();
        for c in body.chars() {
            match c {
                '\\' if depth_str && !escaped => {
                    escaped = true;
                    cur.push(c);
                    continue;
                }
                '"' if !escaped => {
                    depth_str = !depth_str;
                    cur.push(c);
                }
                ',' if !depth_str => {
                    if !cur.trim().is_empty() {
                        items.push(parse_value(&cur, line)?);
                    }
                    cur.clear();
                }
                _ => cur.push(c),
            }
            escaped = false;
        }
        if !cur.trim().is_empty() {
            items.push(parse_value(&cur, line)?);
        }
        return Ok(Val::List(items));
    }
    match s {
        "true" => return Ok(Val::Bool(true)),
        "false" => return Ok(Val::Bool(false)),
        _ => {}
    }
    s.parse::<i64>()
        .map(Val::Int)
        .map_err(|_| err(line, format!("unsupported value `{s}`")))
}

/// Net `[` vs `]` count outside strings — used to join multi-line
/// arrays.
fn bracket_balance(s: &str) -> i32 {
    let mut bal = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => bal += 1,
            ']' if !in_str => bal -= 1,
            _ => {}
        }
        escaped = false;
    }
    bal
}

/// Parses a document in the supported subset.
pub fn parse(src: &str) -> Result<Doc, ParseError> {
    let mut doc = Doc::default();
    let mut current: Option<Table> = None;
    let mut lines = src.lines().enumerate();
    while let Some((n, raw)) = lines.next() {
        let line_no = n + 1;
        let mut joined;
        let mut line = strip_comment(raw).trim();
        // A `key = [` whose array spans lines: join until brackets
        // balance.
        if line.contains('=') && bracket_balance(line) > 0 {
            joined = line.to_string();
            for (m, cont) in lines.by_ref() {
                joined.push(' ');
                joined.push_str(strip_comment(cont).trim());
                if bracket_balance(&joined) <= 0 {
                    break;
                }
                if m - n > 500 {
                    return Err(err(line_no, "unterminated array"));
                }
            }
            line = joined.trim();
        }
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[") {
            let name = h
                .strip_suffix("]]")
                .ok_or_else(|| err(line_no, "malformed [[header]]"))?
                .trim()
                .to_string();
            if let Some(t) = current.take() {
                doc.tables.push(t);
            }
            current = Some(Table {
                name,
                entries: Vec::new(),
            });
        } else if let Some(h) = line.strip_prefix('[') {
            let name = h
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "malformed [header]"))?
                .trim()
                .to_string();
            if let Some(t) = current.take() {
                doc.tables.push(t);
            }
            current = Some(Table {
                name,
                entries: Vec::new(),
            });
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().to_string();
            let val = parse_value(&line[eq + 1..], line_no)?;
            match &mut current {
                Some(t) => t.entries.push((key, val)),
                None => doc.root.entries.push((key, val)),
            }
        } else {
            return Err(err(line_no, format!("unparseable line `{line}`")));
        }
    }
    if let Some(t) = current.take() {
        doc.tables.push(t);
    }
    Ok(doc)
}

/// Escapes a string for emission as a TOML basic string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_arrays_and_values() {
        let doc = parse(
            r#"
# comment
schema = 1
[meta]
title = "Lock order" # trailing
[[level]]
rank = 10
patterns = ["core.lock", "x # not a comment"]
strict = true
[[level]]
rank = 20
"#,
        )
        .unwrap();
        assert_eq!(doc.root.get("schema"), Some(&Val::Int(1)));
        assert_eq!(doc.all("meta").count(), 1);
        let levels: Vec<_> = doc.all("level").collect();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].get("rank"), Some(&Val::Int(10)));
        assert_eq!(levels[0].get("strict"), Some(&Val::Bool(true)));
        let pats = levels[0].get("patterns").unwrap().as_list().unwrap();
        assert_eq!(pats[1].as_str(), Some("x # not a comment"));
    }

    #[test]
    fn multiline_arrays_join() {
        let doc =
            parse("notes = [\n    \"one [with] brackets\", # c\n    \"two\",\n]\nk = 3\n").unwrap();
        let notes = doc.root.get("notes").unwrap().as_list().unwrap();
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].as_str(), Some("one [with] brackets"));
        assert_eq!(doc.root.get("k"), Some(&Val::Int(3)));
    }

    #[test]
    fn escape_round_trip() {
        let s = "a\"b\\c\nd";
        let doc = parse(&format!("k = {}", escape(s))).unwrap();
        assert_eq!(doc.root.str_of("k"), Some(s));
    }
}
