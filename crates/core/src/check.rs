//! Debug-mode contract checking: unlogged-write and range-conflict
//! detection.
//!
//! §4.2's correctness contract rests entirely on the programmer calling
//! `set_range` before every mutation of recoverable memory; §6 reports
//! that when they forget, "the result is disastrous" — the committed
//! image silently diverges from virtual memory. §7 muses that VM page
//! protection could catch the mistake. This module is that safety net,
//! implemented one level up, without kernel help (in the spirit of the
//! whole library):
//!
//! * **Unlogged-write detection** — `begin_transaction` snapshots every
//!   fully loaded mapped region; commit diffs current memory against the
//!   snapshot and subtracts the union of declared `set_range` intervals
//!   (this transaction's and every other live transaction's). Whatever
//!   differs outside that union was mutated behind RVM's back.
//! * **Range-conflict detection** — overlapping `set_range` declarations
//!   from concurrent uncommitted transactions are flagged. RVM itself
//!   deliberately provides no serializability (§3.1), so an overlap is
//!   not an RVM error — but it is almost always a locking bug in the
//!   layer above, and the checker is where such bugs surface.
//!
//! Violations are recorded as [`CheckViolation`] values surfaced through
//! `query`, counted in the stats block, and — with
//! [`Tuning::panic_on_violation`](crate::Tuning) — turned into panics so
//! tests die at the first contract breach.

use std::collections::HashMap;
use std::fmt;

use crate::ranges::ByteRange;

/// A detected violation of the RVM programming contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckViolation {
    /// Bytes of a mapped region changed during a transaction without any
    /// `set_range` covering them: the forgotten-`set_range` bug of §6.
    /// On commit these bytes are *not* logged — after a crash the
    /// recovered image would silently lose them.
    UnloggedWrite {
        /// The transaction whose commit exposed the mutation.
        tid: u64,
        /// Name of the region's backing segment.
        segment: String,
        /// Offset of the undeclared mutation within the region.
        offset: u64,
        /// Length of the undeclared mutation.
        len: u64,
    },
    /// Two concurrent uncommitted transactions declared overlapping
    /// ranges — last committer wins, which is almost never what the
    /// (missing) locking layer above RVM intended.
    RangeConflict {
        /// The transaction making the later declaration.
        tid: u64,
        /// The transaction holding the earlier overlapping declaration.
        other_tid: u64,
        /// Name of the region's backing segment.
        segment: String,
        /// Start of the overlap within the region.
        offset: u64,
        /// Length of the overlap.
        len: u64,
    },
}

impl fmt::Display for CheckViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckViolation::UnloggedWrite {
                tid,
                segment,
                offset,
                len,
            } => write!(
                f,
                "unlogged write: txn {tid} committed while '{segment}'[{offset}..{}) \
                 changed without a covering set_range",
                offset + len
            ),
            CheckViolation::RangeConflict {
                tid,
                other_tid,
                segment,
                offset,
                len,
            } => write!(
                f,
                "range conflict: txn {tid} and txn {other_tid} both declared \
                 '{segment}'[{offset}..{})",
                offset + len
            ),
        }
    }
}

/// Library-internal checker state, guarded by one mutex in `RvmShared`.
///
/// Lock order: `regions` (RwLock) → this mutex → region `mem_lock`s.
#[derive(Default)]
pub(crate) struct CheckState {
    /// Per-transaction snapshots of every mapped region's bytes, taken at
    /// `begin_transaction` while unlogged-write detection is on, keyed
    /// `tid → region id → image`. Refreshed over a transaction's declared
    /// ranges when it ends, so concurrent committed writes never read as
    /// unlogged.
    pub(crate) snapshots: HashMap<u64, HashMap<u64, Vec<u8>>>,
    /// Live `set_range` declarations per region id, as `(tid, range)`
    /// pairs — the conflict-detection index and the diff exclusion set.
    pub(crate) declared: HashMap<u64, Vec<(u64, ByteRange)>>,
    /// Violations recorded so far (also counted in the stats block).
    pub(crate) violations: Vec<CheckViolation>,
}

/// Maximal byte intervals where `old` and `new` differ. The inputs have
/// equal length (both are images of the same region).
pub(crate) fn diff_intervals(old: &[u8], new: &[u8]) -> Vec<ByteRange> {
    debug_assert_eq!(old.len(), new.len());
    let mut out = Vec::new();
    let mut run_start: Option<usize> = None;
    for i in 0..old.len().min(new.len()) {
        match (old[i] == new[i], run_start) {
            (false, None) => run_start = Some(i),
            (true, Some(s)) => {
                out.push(ByteRange::at(s as u64, (i - s) as u64));
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        out.push(ByteRange::at(s as u64, (old.len() - s) as u64));
    }
    out
}

/// Subtracts a sorted, disjoint list of `allowed` ranges from `range`,
/// returning the uncovered remainder in order.
pub(crate) fn subtract_ranges(range: ByteRange, allowed: &[ByteRange]) -> Vec<ByteRange> {
    let mut out = Vec::new();
    let mut cursor = range.start;
    for a in allowed {
        if a.end <= cursor {
            continue;
        }
        if a.start >= range.end {
            break;
        }
        if a.start > cursor {
            out.push(ByteRange::at(cursor, a.start.min(range.end) - cursor));
        }
        cursor = cursor.max(a.end);
        if cursor >= range.end {
            return out;
        }
    }
    if cursor < range.end {
        out.push(ByteRange::at(cursor, range.end - cursor));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(start: u64, end: u64) -> ByteRange {
        ByteRange::at(start, end - start)
    }

    #[test]
    fn diff_finds_maximal_runs() {
        assert!(diff_intervals(&[0; 8], &[0; 8]).is_empty());
        assert_eq!(
            diff_intervals(&[0, 0, 1, 1, 0, 1, 0, 0], &[0, 0, 2, 2, 0, 2, 0, 0]),
            vec![r(2, 4), r(5, 6)]
        );
        // Runs touching either edge close correctly.
        assert_eq!(
            diff_intervals(&[1, 0, 0, 1], &[2, 0, 0, 2]),
            vec![r(0, 1), r(3, 4)]
        );
    }

    #[test]
    fn subtraction_covers_all_cases() {
        // No exclusions: everything remains.
        assert_eq!(subtract_ranges(r(10, 20), &[]), vec![r(10, 20)]);
        // Full coverage: nothing remains.
        assert!(subtract_ranges(r(10, 20), &[r(0, 32)]).is_empty());
        // Hole in the middle.
        assert_eq!(
            subtract_ranges(r(10, 20), &[r(12, 15)]),
            vec![r(10, 12), r(15, 20)]
        );
        // Clipping at both edges plus an irrelevant range.
        assert_eq!(
            subtract_ranges(r(10, 20), &[r(0, 11), r(18, 40), r(50, 60)]),
            vec![r(11, 18)]
        );
    }

    #[test]
    fn violations_render_their_geometry() {
        let v = CheckViolation::UnloggedWrite {
            tid: 7,
            segment: "seg".into(),
            offset: 100,
            len: 8,
        };
        assert!(v.to_string().contains("[100..108)"), "{v}");
        let c = CheckViolation::RangeConflict {
            tid: 2,
            other_tid: 1,
            segment: "seg".into(),
            offset: 0,
            len: 4,
        };
        assert!(c.to_string().contains("txn 2 and txn 1"), "{c}");
    }
}
