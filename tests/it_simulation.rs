//! Sanity checks of the simulation substrate and quick shape checks of
//! the benchmark harness: the paper's qualitative claims must hold even
//! on reduced sweeps (full sweeps live in the `table1`/`figure8`/
//! `figure9` binaries).

use rvm_bench::tpca_run::{run_cell, SweepConfig, SystemKind};
use tpca::AccessPattern;

fn quick_cfg() -> SweepConfig {
    SweepConfig {
        txns_per_trial: 4_000,
        trials: 1,
        ..SweepConfig::default()
    }
}

#[test]
fn log_force_bound_holds() {
    // §7.1.2: observed best case within 15% of the 57.4 txn/s bound.
    let cfg = quick_cfg();
    let cell = run_cell(SystemKind::Rvm, 32 * 1024, AccessPattern::Sequential, &cfg);
    let tps = cell.mean_tps();
    assert!(tps < 57.5, "cannot beat the log-force bound: {tps}");
    assert!(
        tps > 57.5 * 0.80,
        "best case within ~15-20% of bound: {tps}"
    );
}

#[test]
fn rvm_beats_camelot_across_the_board() {
    let cfg = quick_cfg();
    for pattern in AccessPattern::ALL {
        for accounts in [32 * 1024u64, 262_144] {
            let rvm = run_cell(SystemKind::Rvm, accounts, pattern, &cfg).mean_tps();
            let cam = run_cell(SystemKind::Camelot, accounts, pattern, &cfg).mean_tps();
            assert!(
                rvm > cam,
                "RVM must outperform Camelot ({pattern:?}, {accounts} accounts): {rvm} vs {cam}"
            );
        }
    }
}

#[test]
fn camelot_is_locality_sensitive_at_small_sizes_and_rvm_is_not() {
    // §7.1.2: at Rmem/Pmem = 12.5%, Camelot's throughput drops from
    // sequential to localized to random; RVM's barely moves.
    let cfg = quick_cfg();
    let accounts = 32 * 1024;
    let cam_seq = run_cell(
        SystemKind::Camelot,
        accounts,
        AccessPattern::Sequential,
        &cfg,
    )
    .mean_tps();
    let cam_loc = run_cell(
        SystemKind::Camelot,
        accounts,
        AccessPattern::Localized,
        &cfg,
    )
    .mean_tps();
    let cam_rnd = run_cell(SystemKind::Camelot, accounts, AccessPattern::Random, &cfg).mean_tps();
    assert!(
        cam_seq > cam_loc && cam_loc > cam_rnd,
        "{cam_seq} > {cam_loc} > {cam_rnd}"
    );
    assert!(cam_rnd < cam_seq * 0.95, "sensitivity is material");

    let rvm_seq = run_cell(SystemKind::Rvm, accounts, AccessPattern::Sequential, &cfg).mean_tps();
    let rvm_rnd = run_cell(SystemKind::Rvm, accounts, AccessPattern::Random, &cfg).mean_tps();
    assert!(
        (rvm_seq - rvm_rnd).abs() / rvm_seq < 0.06,
        "RVM is pattern-insensitive at 12.5%: {rvm_seq} vs {rvm_rnd}"
    );
}

#[test]
fn rvm_random_throughput_knees_when_rmem_exceeds_memory() {
    let cfg = quick_cfg();
    let small = run_cell(SystemKind::Rvm, 32 * 1024, AccessPattern::Random, &cfg).mean_tps();
    let large = run_cell(SystemKind::Rvm, 425_984, AccessPattern::Random, &cfg).mean_tps();
    assert!(
        large < small * 0.85,
        "paging must bite at 162.5%: {small} -> {large}"
    );
}

#[test]
fn cpu_per_transaction_ratio_matches_figure_9() {
    // "RVM requires about half the CPU usage of Camelot" (sequential).
    let cfg = quick_cfg();
    let rvm = run_cell(SystemKind::Rvm, 32 * 1024, AccessPattern::Sequential, &cfg).mean_cpu();
    let cam = run_cell(
        SystemKind::Camelot,
        32 * 1024,
        AccessPattern::Sequential,
        &cfg,
    )
    .mean_cpu();
    let ratio = cam / rvm;
    assert!(
        (1.5..3.0).contains(&ratio),
        "Camelot/RVM CPU ratio ~2, got {ratio:.2} ({cam:.2}/{rvm:.2})"
    );
}

#[test]
fn sweeps_are_deterministic() {
    let cfg = quick_cfg();
    let a = run_cell(SystemKind::Rvm, 65_536, AccessPattern::Localized, &cfg).mean_tps();
    let b = run_cell(SystemKind::Rvm, 65_536, AccessPattern::Localized, &cfg).mean_tps();
    assert_eq!(a, b, "virtual-clock runs must be bit-for-bit repeatable");
}

#[test]
fn coda_workload_reproduces_table_2_bands() {
    // Scaled-down check: servers get intra-only savings around 20%;
    // the burstiest client (berlioz) gets majority inter savings.
    let profiles = coda_wl::profiles();
    let grieg = profiles.iter().find(|p| p.name == "grieg").unwrap();
    let mut p = grieg.clone();
    p.txns = 2_000;
    let row = coda_wl::run_machine(&p, 42);
    assert!(
        (15.0..30.0).contains(&row.intra_pct),
        "grieg intra {}",
        row.intra_pct
    );
    assert_eq!(row.inter_pct, 0.0);

    let berlioz = profiles.iter().find(|p| p.name == "berlioz").unwrap();
    let mut p = berlioz.clone();
    p.txns = 3_000;
    let row = coda_wl::run_machine(&p, 42);
    assert!(row.inter_pct > 45.0, "berlioz inter {}", row.inter_pct);
    assert!(row.inter_pct > row.intra_pct);
}
