//! Multi-threaded use: the paper's RVM is "implemented to be
//! multi-threaded and to function correctly in the presence of true
//! parallelism" (§3.1) while leaving serializability to the application.
//! These tests drive concurrent transactions on disjoint data (the
//! application-level discipline) and check library-level consistency.

mod common {
    include!("lib.rs");
}

use std::sync::{Arc, Barrier};

use common::World;
use rvm::{CommitMode, RegionDescriptor, Tuning, TxnMode, PAGE_SIZE};
use rvm_storage::Device;

#[test]
fn concurrent_transactions_on_disjoint_slots() {
    let world = World::new(4 << 20);
    let rvm = Arc::new(world.boot());
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 8 * PAGE_SIZE))
        .unwrap();

    let threads: Vec<_> = (0..8u64)
        .map(|t| {
            let rvm = rvm.clone();
            let region = region.clone();
            std::thread::spawn(move || {
                for i in 0..50u64 {
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                    let off = t * PAGE_SIZE + (i % 8) * 256;
                    region
                        .write(&mut txn, off, &[(t * 50 + i) as u8; 256])
                        .unwrap();
                    txn.commit(CommitMode::Flush).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = rvm.stats();
    assert_eq!(stats.txns_committed, 400);
    assert_eq!(rvm.query().active_transactions, 0);

    // Reboot: every thread's final writes are durable.
    drop(region);
    drop(Arc::try_unwrap(rvm).expect("sole owner"));
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 8 * PAGE_SIZE))
        .unwrap();
    for t in 0..8u64 {
        for slot in 0..8u64 {
            let i = if 48 + slot < 50 { 48 + slot } else { 40 + slot };
            let off = t * PAGE_SIZE + slot * 256;
            assert_eq!(
                region.read_vec(off, 4).unwrap(),
                vec![(t * 50 + i) as u8; 4],
                "thread {t} slot {slot}"
            );
        }
    }
}

#[test]
fn group_commit_amortizes_forces_across_threads() {
    const THREADS: u64 = 8;
    const TXNS: u64 = 25;
    let world = World::new(8 << 20);
    let rvm = Arc::new(world.boot_tuned(Tuning {
        // A 2 ms accumulation window makes batching deterministic enough
        // to assert on: while a leader sleeps, the other seven threads
        // reach the queue.
        group_commit_wait_us: 2_000,
        ..Tuning::default()
    }));
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, THREADS * PAGE_SIZE))
        .unwrap();
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let rvm = rvm.clone();
            let region = region.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..TXNS {
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                    region
                        .put_u64(&mut txn, t * PAGE_SIZE + (i % 16) * 8, t * 1000 + i + 1)
                        .unwrap();
                    txn.commit(CommitMode::Flush).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // The amortization contract, via `query`: every commit flushed, but
    // far fewer forces than commits.
    let q = rvm.query();
    assert_eq!(q.stats.flush_commits, THREADS * TXNS);
    assert_eq!(q.stats.group_commit_txns, THREADS * TXNS);
    assert!(q.stats.group_commit_batches >= 1);
    assert!(
        q.stats.log_forces < q.stats.flush_commits,
        "forces {} not amortized over {} flush commits",
        q.stats.log_forces,
        q.stats.flush_commits
    );
    assert!(q.log_force_amortization() < 1.0);
    assert!(q.mean_group_batch() > 1.0);

    // Crash without terminating: the shared forces must have made every
    // acknowledged commit durable, and the log must verify clean.
    drop(region);
    std::mem::forget(Arc::try_unwrap(rvm).expect("sole owner"));
    let report = rvm_check::verify(&(world.log.clone() as Arc<dyn Device>)).unwrap();
    assert!(report.is_clean(), "{}", report.render());

    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, THREADS * PAGE_SIZE))
        .unwrap();
    for t in 0..THREADS {
        // Thread t's last write to slot 8 was i == 24.
        assert_eq!(
            region.get_u64(t * PAGE_SIZE + 8 * 8).unwrap(),
            t * 1000 + 25,
            "thread {t} lost its final grouped commit"
        );
    }
}

#[test]
fn pipelined_log_writer_amortizes_and_recovers() {
    const THREADS: u64 = 8;
    const TXNS: u64 = 25;
    let world = World::new(8 << 20);
    let rvm = Arc::new(world.boot_tuned(Tuning {
        log_pipeline: true,
        // A 2 ms accumulation window lets committers pile up (as in the
        // serial group-commit test above), and a batch cap below the
        // thread count splits them so consecutive batches coexist in the
        // pipeline instead of one batch swallowing every waiter.
        group_commit_wait_us: 2_000,
        group_commit_max_txns: 4,
        ..Tuning::default()
    }));
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, THREADS * PAGE_SIZE))
        .unwrap();
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let rvm = rvm.clone();
            let region = region.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..TXNS {
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                    region
                        .put_u64(&mut txn, t * PAGE_SIZE + (i % 16) * 8, t * 1000 + i + 1)
                        .unwrap();
                    txn.commit(CommitMode::Flush).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Same amortization contract as serial group commit, plus evidence
    // the pipeline engaged: batches were submitted asynchronously and at
    // least two forces coexisted in flight (one buffer filling while the
    // other's force was pending).
    let q = rvm.query();
    assert_eq!(q.stats.flush_commits, THREADS * TXNS);
    assert_eq!(q.stats.group_commit_txns, THREADS * TXNS);
    assert!(
        q.stats.log_forces < q.stats.flush_commits,
        "forces {} not amortized over {} flush commits",
        q.stats.log_forces,
        q.stats.flush_commits
    );
    assert!(q.stats.pipeline_submits >= 2, "{:?}", q.stats);
    assert!(
        q.stats.forces_in_flight_hw >= 2,
        "pipeline never overlapped: high-water {}",
        q.stats.forces_in_flight_hw
    );

    // Crash without terminating: acknowledged commits were all reaped
    // (an outcome is only published after its batch's force completes),
    // so the log must verify clean and recovery must find every thread's
    // final write.
    drop(region);
    std::mem::forget(Arc::try_unwrap(rvm).expect("sole owner"));
    let report = rvm_check::verify(&(world.log.clone() as Arc<dyn Device>)).unwrap();
    assert!(report.is_clean(), "{}", report.render());

    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, THREADS * PAGE_SIZE))
        .unwrap();
    for t in 0..THREADS {
        assert_eq!(
            region.get_u64(t * PAGE_SIZE + 8 * 8).unwrap(),
            t * 1000 + 25,
            "thread {t} lost its final pipelined commit"
        );
    }
}

#[test]
fn mixed_commit_modes_under_concurrency() {
    let world = World::new(4 << 20);
    let rvm = Arc::new(world.boot());
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE))
        .unwrap();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let rvm = rvm.clone();
            let region = region.clone();
            std::thread::spawn(move || {
                for i in 0..60u64 {
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                    region
                        .put_u64(&mut txn, t * PAGE_SIZE + (i % 32) * 8, i)
                        .unwrap();
                    let mode = if i % 3 == 0 {
                        CommitMode::Flush
                    } else {
                        CommitMode::NoFlush
                    };
                    txn.commit(mode).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    rvm.flush().unwrap();
    assert_eq!(rvm.stats().txns_committed, 240);
    assert_eq!(rvm.query().spooled_transactions, 0);
}

#[test]
fn concurrent_commits_with_background_truncation() {
    let world = World::new(96 * 1024);
    let rvm = Arc::new(world.boot_tuned(Tuning {
        background_truncation: true,
        truncation_threshold: 0.3,
        ..Tuning::default()
    }));
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE))
        .unwrap();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let rvm = rvm.clone();
            let region = region.clone();
            std::thread::spawn(move || {
                for i in 0..80u64 {
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                    region
                        .write(&mut txn, t * PAGE_SIZE + (i % 4) * 1024, &[i as u8; 1024])
                        .unwrap();
                    txn.commit(CommitMode::Flush).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // The background thread must have kept the log bounded.
    let q = rvm.query();
    assert!(q.log.utilization < 0.9, "utilization {}", q.log.utilization);
    assert_eq!(q.stats.txns_committed, 320);
    Arc::try_unwrap(rvm)
        .expect("sole owner")
        .terminate()
        .unwrap();
}

#[test]
fn aborting_threads_do_not_disturb_committers() {
    let world = World::new(2 << 20);
    let rvm = Arc::new(world.boot());
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 2 * PAGE_SIZE))
        .unwrap();
    let committer = {
        let rvm = rvm.clone();
        let region = region.clone();
        std::thread::spawn(move || {
            for i in 0..100u64 {
                let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                region.put_u64(&mut txn, (i % 64) * 8, i + 1).unwrap();
                txn.commit(CommitMode::Flush).unwrap();
            }
        })
    };
    let aborter = {
        let rvm = rvm.clone();
        let region = region.clone();
        std::thread::spawn(move || {
            for i in 0..100u64 {
                let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                region
                    .put_u64(&mut txn, PAGE_SIZE + (i % 64) * 8, 0xBAD)
                    .unwrap();
                txn.abort().unwrap();
            }
        })
    };
    committer.join().unwrap();
    aborter.join().unwrap();
    let stats = rvm.stats();
    assert_eq!(stats.txns_committed, 100);
    assert_eq!(stats.txns_aborted, 100);
    // The aborter's page is untouched.
    for slot in 0..64u64 {
        assert_eq!(region.get_u64(PAGE_SIZE + slot * 8).unwrap(), 0);
    }
}

#[test]
fn query_is_safe_under_concurrent_load() {
    let world = World::new(2 << 20);
    let rvm = Arc::new(world.boot());
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let worker = {
        let rvm = rvm.clone();
        let region = region.clone();
        std::thread::spawn(move || {
            for i in 0..200u64 {
                let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                region.put_u64(&mut txn, (i % 16) * 8, i).unwrap();
                txn.commit(CommitMode::NoFlush).unwrap();
            }
            rvm.flush().unwrap();
        })
    };
    let watcher = {
        let rvm = rvm.clone();
        std::thread::spawn(move || {
            let mut last_committed = 0;
            for _ in 0..500 {
                let q = rvm.query();
                assert!(q.stats.txns_committed >= last_committed, "monotone");
                last_committed = q.stats.txns_committed;
            }
        })
    };
    worker.join().unwrap();
    watcher.join().unwrap();
}
