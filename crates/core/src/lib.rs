//! # RVM — Lightweight Recoverable Virtual Memory
//!
//! A Rust implementation of the transactional facility described in
//! M. Satyanarayanan, H. H. Mashburn, P. Kumar, D. C. Steere and
//! J. J. Kistler, *"Lightweight Recoverable Virtual Memory"*, SOSP 1993.
//!
//! RVM offers **recoverable virtual memory**: regions of memory on which
//! transactional **atomicity** and (process-failure) **permanence** are
//! guaranteed, while **serializability** and **media recovery** are
//! deliberately left to layers above and below (Figure 2 of the paper).
//! It is a library, not a server: no external process, no special
//! operating-system support — a deliberate reaction to the Camelot
//! experience the paper recounts (§2–3).
//!
//! ## The programming model
//!
//! 1. [`Rvm::initialize`] opens a write-ahead log and runs crash recovery.
//! 2. [`Rvm::map`] maps regions of named *external data segments* into
//!    memory; newly mapped data is the committed image.
//! 3. [`Rvm::begin_transaction`] starts a [`Transaction`];
//!    [`Transaction::set_range`] (or the write helpers on [`Region`])
//!    declares the bytes about to change; [`Transaction::commit`] makes
//!    the change atomic and — with [`CommitMode::Flush`] — permanent.
//! 4. [`Rvm::flush`] and [`Rvm::truncate`] expose log control for
//!    applications using lazy ([`CommitMode::NoFlush`]) commits.
//!
//! ```
//! use std::sync::Arc;
//! use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
//! use rvm::segment::MemResolver;
//! use rvm_storage::MemDevice;
//!
//! # fn main() -> rvm::Result<()> {
//! let log: Arc<MemDevice> = Arc::new(MemDevice::with_len(1 << 20));
//! let segments = MemResolver::new();
//! let rvm = Rvm::initialize(
//!     Options::new(log.clone())
//!         .resolver(segments.clone().into_resolver())
//!         .create_if_empty(),
//! )?;
//! let region = rvm.map(&RegionDescriptor::new("counters", 0, PAGE_SIZE))?;
//!
//! let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
//! let n = region.get_u64(0)?;
//! region.put_u64(&mut txn, 0, n + 1)?;
//! txn.commit(CommitMode::Flush)?;
//! assert_eq!(region.get_u64(0)?, 1);
//! # Ok(())
//! # }
//! ```
//!
//! ## What is implemented
//!
//! * Segments/regions with the §4.1 mapping rules; a safe byte/typed API
//!   plus a pointer-based unsafe-style API mirroring the C library.
//! * No-undo/redo new-value logging with single-record commits, CRC-sealed
//!   against torn writes, bidirectional scanning (Figure 5), a circular
//!   record area with a dual-copy status block (Figure 6).
//! * Crash recovery by tail→head latest-wins trees, idempotent via
//!   delayed status update (§5.1.2).
//! * Epoch **and** incremental truncation (page vector, page queue,
//!   uncommitted reference counts — Figure 7), with automatic reversion
//!   to epoch truncation when incremental progress is blocked.
//! * Intra- and inter-transaction log optimizations (§5.2), individually
//!   switchable for ablation.
//! * No-restore and no-flush transaction modes, `flush`/`truncate` log
//!   control, `query`/`set_options` introspection and tuning.
//! * Transient-fault tolerance: bounded retry with deterministic backoff
//!   at every device touchpoint ([`RetryPolicy`]), and fail-fast
//!   *poisoning* ([`RvmError::Poisoned`]) when an unrecoverable I/O
//!   failure lands mid-commit, keeping in-memory cursors and the durable
//!   image consistent.
//! * Group commit: concurrent flush-mode commits share a single log
//!   force through a leader/follower commit queue
//!   ([`Tuning::group_commit`], on by default), with per-batch statistics
//!   surfaced via `query`.
//!
//! Layered packages live in sibling crates, as the paper suggests (§8):
//! `rvm-alloc` (recoverable heap), `rvm-loader` (segment loader),
//! `rvm-nest` (nesting), `rvm-dist` (two-phase commit).
//!
//! ## Lock order (internal)
//!
//! The crate's locks form a single acquisition order; every code path
//! acquires along it and never against it:
//!
//! 1. `RvmShared::core` — log cursors, page queue, segment cache. The
//!    only lock a thread may *block* on with another of these held is
//!    none: `core` is always taken first.
//! 2. `RvmShared::regions` (read or write) — the region map.
//! 3. Per-region memory locks (`mem_lock`), then per-region
//!    `page_vector` — the scrubber's VM-rewrite rung holds
//!    `core → mem_lock → page_vector` in that order; no path acquires
//!    `mem_lock` while holding a `page_vector`, or `core` while holding
//!    either.
//! 4. Leaf locks, never held while acquiring any of the above:
//!    `RvmShared::check` (debug-checker state), `RvmShared::bg_wakeup` /
//!    `scrub_wakeup`, `Rvm::bg_thread` / `scrub_thread`, and
//!    `SegmentChecksums`' internal entry table.
//!
//! Two non-obvious consequences:
//!
//! * `check` is a leaf: the checker must copy what it needs and release
//!   `check` *before* anything that takes `core` (`query` historically
//!   held `check` across its `core` acquisition while commit paths took
//!   them in the opposite order — a lock-order inversion, fixed).
//! * The group-commit queue locks (`group::CommitQueue`) are taken only
//!   while `core` is *not* held; the leader acquires `core` after
//!   claiming the batch.
//!
//! The `epoch_done` condvar waits on `core` itself (releasing it while
//! parked), so epoch truncation never blocks commits while holding a
//! second lock.

mod check;
pub mod crc;
mod error;
mod group;
pub mod log;
#[cfg(any(loom, test))]
pub mod models;
mod options;
mod pipeline;
pub mod query;
pub mod ranges;
pub mod recovery;
mod region;
mod retry;
mod rvm;
pub mod scrub;
pub mod segment;
mod spool;
pub mod stats;
mod truncation;
mod txn;

pub use check::CheckViolation;
pub use crc::crc32;
pub use error::{Result, RvmError};
#[doc(hidden)]
pub use options::MutationHooks;
pub use options::{CommitMode, LoadPolicy, Options, TruncationMode, Tuning, TxnMode, PAGE_SIZE};
pub use query::{LogInfo, QueryInfo};
pub use recovery::RecoveryReport;
pub use region::{Region, RegionDescriptor};
pub use retry::{thread_sleeper, BackoffSleeper, RetryPolicy};
pub use rvm::{Rvm, TerminateFailure};
pub use scrub::{ScrubReport, SegmentChecksums};
pub use stats::StatsSnapshot;
pub use txn::Transaction;
