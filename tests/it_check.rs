//! Integration tests for the checking subsystem: the §6 unlogged-write
//! detector ("the result is disastrous" — a forgotten `set-range` was the
//! most common RVM bug), the range-conflict detector, and `rvmlog
//! verify`'s WAL invariant verification.

mod common {
    include!("lib.rs");
}

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use common::World;
use rvm::log::record::{parse_header, HEADER_SIZE};
use rvm::log::status::LOG_AREA_START;
use rvm::{CheckViolation, CommitMode, RegionDescriptor, Tuning, TxnMode, PAGE_SIZE};
use rvm_logtool::LogInspector;
use rvm_storage::Device;

fn checking() -> Tuning {
    Tuning {
        check_unlogged_writes: true,
        check_range_conflicts: true,
        ..Tuning::default()
    }
}

/// Writes a byte into mapped region memory behind the transaction's back —
/// the exact §6 bug the checker exists to catch.
fn poke_unlogged(region: &rvm::Region, offset: u64, value: u8) {
    // SAFETY: offset is within the region and nothing else touches the
    // region concurrently in these tests; this simulates application code
    // mutating recoverable memory without a covering set_range.
    unsafe {
        *region.base_ptr().add(offset as usize) = value;
    }
}

#[test]
fn unlogged_mutation_is_caught_at_commit() {
    let world = World::new(1 << 20);
    let rvm = world.boot_tuned(checking());
    let region = rvm
        .map(&RegionDescriptor::new("data", 0, PAGE_SIZE))
        .unwrap();

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[0x11; 8]).unwrap();
    poke_unlogged(&region, 256, 0xAB);
    let tid = txn.tid();
    txn.commit(CommitMode::Flush).unwrap();

    let q = rvm.query();
    assert_eq!(q.stats.check_unlogged_writes, 1, "one violation counted");
    let matching = q
        .check_violations
        .iter()
        .filter(|v| match v {
            CheckViolation::UnloggedWrite {
                tid: t,
                segment,
                offset,
                len,
            } => *t == tid && segment == "data" && *offset <= 256 && 256 < offset + len,
            _ => false,
        })
        .count();
    assert_eq!(matching, 1, "violations: {:?}", q.check_violations);
}

#[test]
fn declared_ptr_mutation_is_clean() {
    let world = World::new(1 << 20);
    let rvm = world.boot_tuned(checking());
    let region = rvm
        .map(&RegionDescriptor::new("data", 0, PAGE_SIZE))
        .unwrap();

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    let ptr = region.base_ptr();
    // The C-style discipline done right: declare through the pointer API,
    // then mutate in place.
    txn.set_range_ptr(&region, unsafe { ptr.add(256) }, 4)
        .unwrap();
    poke_unlogged(&region, 256, 0xAB);
    txn.commit(CommitMode::Flush).unwrap();

    let q = rvm.query();
    assert_eq!(q.stats.check_unlogged_writes, 0);
    assert!(q.check_violations.is_empty(), "{:?}", q.check_violations);
}

#[test]
fn panic_mode_fires_inside_commit() {
    let world = World::new(1 << 20);
    let rvm = world.boot_tuned(Tuning {
        panic_on_violation: true,
        ..checking()
    });
    let region = rvm
        .map(&RegionDescriptor::new("data", 0, PAGE_SIZE))
        .unwrap();

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[1; 4]).unwrap();
    poke_unlogged(&region, 512, 0xEE);
    let result = catch_unwind(AssertUnwindSafe(move || txn.commit(CommitMode::Flush)));
    let payload = result.expect_err("commit must panic on the violation");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("rvm check violation"), "panic payload: {msg}");

    // The violation is on record even though the commit never finished.
    assert_eq!(rvm.query().stats.check_unlogged_writes, 1);
}

#[test]
fn overlapping_declarations_from_concurrent_txns_are_flagged() {
    let world = World::new(1 << 20);
    let rvm = world.boot_tuned(checking());
    let region = rvm
        .map(&RegionDescriptor::new("data", 0, PAGE_SIZE))
        .unwrap();

    let mut txn1 = rvm.begin_transaction(TxnMode::Restore).unwrap();
    let mut txn2 = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn1, 100, &[1; 50]).unwrap();
    region.write(&mut txn2, 120, &[2; 50]).unwrap();

    let q = rvm.query();
    assert_eq!(q.stats.check_range_conflicts, 1);
    assert!(
        q.check_violations.iter().any(|v| matches!(
            v,
            CheckViolation::RangeConflict {
                segment,
                offset: 120,
                len: 30,
                ..
            } if segment == "data"
        )),
        "{:?}",
        q.check_violations
    );

    // RVM leaves serializability to the application (§3.1): both commits
    // succeed, and the overlap does not masquerade as an unlogged write.
    txn1.commit(CommitMode::Flush).unwrap();
    txn2.commit(CommitMode::Flush).unwrap();
    assert_eq!(rvm.query().stats.check_unlogged_writes, 0);
}

#[test]
fn checker_is_off_by_default() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("data", 0, PAGE_SIZE))
        .unwrap();

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[3; 4]).unwrap();
    poke_unlogged(&region, 900, 0x77);
    txn.commit(CommitMode::Flush).unwrap();

    let q = rvm.query();
    assert_eq!(q.stats.check_unlogged_writes, 0);
    assert!(q.check_violations.is_empty());
}

#[test]
fn set_options_enables_checking_mid_run() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("data", 0, PAGE_SIZE))
        .unwrap();

    // First transaction runs unchecked.
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[1; 8]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();

    rvm.set_options(checking());
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[2; 8]).unwrap();
    poke_unlogged(&region, 700, 0x55);
    txn.commit(CommitMode::Flush).unwrap();

    assert_eq!(rvm.query().stats.check_unlogged_writes, 1);
}

/// The acceptance pairing: corruption in a record's unchecksummed padding
/// (the reverse-displacement block) sails through `rvmlog doctor` —
/// the forward scan never reads those bytes — but `rvmlog verify`
/// convicts it.
#[test]
fn verify_convicts_padding_corruption_doctor_acquits() {
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("data", 0, PAGE_SIZE))
            .unwrap();
        for i in 0..4u8 {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.write(&mut txn, 64 * i as u64, &[i + 1; 16]).unwrap();
            txn.commit(CommitMode::Flush).unwrap();
        }
        std::mem::forget(rvm); // keep the log image as-is
    }

    let log = world.log.clone();
    let inspector = LogInspector::open(log.clone()).unwrap();
    let (off, _) = inspector.records().unwrap()[2];
    let mut header_buf = [0u8; HEADER_SIZE as usize];
    log.read_at(LOG_AREA_START + off, &mut header_buf).unwrap();
    let header = parse_header(&header_buf).unwrap();
    let body_end = off + HEADER_SIZE + header.payload_len as u64;
    log.write_at(LOG_AREA_START + body_end, &[0xDE, 0xAD])
        .unwrap();

    let inspector = LogInspector::open(log.clone()).unwrap();
    let doctor = inspector.doctor().unwrap();
    assert!(
        !doctor.is_damaged(),
        "doctor acquits: {:?}",
        doctor.findings
    );

    let report = rvm_check::verify(&(log as Arc<dyn Device>)).unwrap();
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.contains("reverse-displacement block")),
        "{:?}",
        report.findings
    );
    // Recovery still works — the corruption is latent, which is exactly
    // why only `verify` can find it before it matters.
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("data", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(region.read_vec(64, 16).unwrap(), vec![2u8; 16]);
}

/// Deterministic state machine: hundreds of *legal* operations (declared
/// writes, interleaved transactions, commits, aborts) with every check
/// enabled in panic mode never trip the checker, and the log that remains
/// verifies clean.
#[test]
fn legal_histories_never_trip_the_checker() {
    let world = World::new(4 << 20);
    let rvm = world.boot_tuned(Tuning {
        check_unlogged_writes: true,
        // Overlapping declarations across transactions are legal (§3.1);
        // the state machine below does not avoid them, so the conflict
        // check stays off while the unlogged-write check runs in panic
        // mode: any false positive aborts the test.
        check_range_conflicts: false,
        panic_on_violation: true,
        ..Tuning::default()
    });
    let regions = [
        rvm.map(&RegionDescriptor::new("a", 0, PAGE_SIZE)).unwrap(),
        rvm.map(&RegionDescriptor::new("b", 0, PAGE_SIZE)).unwrap(),
    ];

    // xorshift64: deterministic, dependency-free randomness.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut live: Vec<rvm::Transaction> = Vec::new();
    for _ in 0..300 {
        match next() % 4 {
            0 if live.len() < 3 => {
                live.push(rvm.begin_transaction(TxnMode::Restore).unwrap());
            }
            1 if !live.is_empty() => {
                let t = (next() % live.len() as u64) as usize;
                let region = &regions[(next() % 2) as usize];
                let offset = next() % (PAGE_SIZE - 64);
                let len = 1 + next() % 64;
                let byte = (next() % 256) as u8;
                region
                    .write(&mut live[t], offset, &vec![byte; len as usize])
                    .unwrap();
            }
            2 if !live.is_empty() => {
                let t = (next() % live.len() as u64) as usize;
                live.remove(t).commit(CommitMode::Flush).unwrap();
            }
            3 if !live.is_empty() => {
                let t = (next() % live.len() as u64) as usize;
                live.remove(t).abort().unwrap();
            }
            _ => {}
        }
    }
    for txn in live {
        txn.commit(CommitMode::Flush).unwrap();
    }

    let q = rvm.query();
    assert_eq!(q.stats.check_unlogged_writes, 0);
    assert!(q.check_violations.is_empty(), "{:?}", q.check_violations);

    std::mem::forget(rvm);
    let report = rvm_check::verify(&(world.log.clone() as Arc<dyn Device>)).unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
}
