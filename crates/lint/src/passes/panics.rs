//! Pass 4 — panic-surface audit: an inventory of `unwrap` / `expect` /
//! `panic!`-family macros / slice-indexing reachable from the public API
//! of `rvm` (core) and `rvm-capi`.
//!
//! This pass is an *inventory*, not a verdict: a library whose C
//! bindings promise error codes must know every site where it can abort
//! the process instead. Each (function, kind) pair is one finding with a
//! site count; the checked-in baseline carries the accepted surface and
//! CI fails when it *grows*. Reachability is a name-resolved call-graph
//! over-approximation rooted at every unrestricted-`pub` function.

use std::collections::{HashMap, HashSet};

use crate::findings::{Finding, IdSpace, Pass};
use crate::items::FileModel;
use crate::lexer::{Kind, Tok};
use crate::passes::{fn_key, CallGraph};

// `assert!` family is deliberately excluded: asserts are declared
// invariants, and folding them in would drown the audit. The issue is
// the *undeclared* aborts.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Kind_ {
    Unwrap,
    Expect,
    PanicMacro,
    Index,
}

impl Kind_ {
    fn name(self) -> &'static str {
        match self {
            Kind_::Unwrap => "unwrap",
            Kind_::Expect => "expect",
            Kind_::PanicMacro => "panic-macro",
            Kind_::Index => "indexing",
        }
    }
}

/// Counts panic sites in a body: kind -> (count, first line).
fn panic_sites(toks: &[Tok], open: usize, close: usize) -> HashMap<Kind_, (u32, u32)> {
    let mut out: HashMap<Kind_, (u32, u32)> = HashMap::new();
    let mut add = |k: Kind_, line: u32| {
        let e = out.entry(k).or_insert((0, line));
        e.0 += 1;
    };
    for i in open + 1..close {
        let t = &toks[i];
        match t.kind {
            Kind::Ident
                if t.text == "unwrap"
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                add(Kind_::Unwrap, t.line);
            }
            Kind::Ident
                if t.text == "expect"
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                add(Kind_::Expect, t.line);
            }
            Kind::Ident
                if PANIC_MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                add(Kind_::PanicMacro, t.line);
            }
            Kind::Punct if t.text == "[" && i > 0 => {
                // Indexing: `expr[...]` — the `[` directly follows an
                // ident or a closing group. Array literals/types follow
                // `=`/`(`/`,`/`:`/`&`; attributes follow `#`; macro
                // brackets follow `!`.
                let p = &toks[i - 1];
                let indexing = (p.kind == Kind::Ident
                    && !matches!(
                        p.text.as_str(),
                        "mut" | "return" | "in" | "as" | "dyn" | "box" | "else"
                    ))
                    || p.is_punct(')')
                    || p.is_punct(']');
                if indexing {
                    add(Kind_::Index, t.line);
                }
            }
            _ => {}
        }
    }
    out
}

/// Runs the pass: `files` are the core + capi sources.
pub fn run(files: &[&FileModel]) -> Vec<Finding> {
    let (graph, _) = CallGraph::build(files);
    // Roots: unrestricted-pub non-test functions.
    let mut reachable: HashSet<String> = HashSet::new();
    for fm in files {
        for f in fm.fns.iter().filter(|f| f.is_pub && !f.is_test) {
            for k in graph.reachable(&fn_key(&fm.path, &f.qual)) {
                reachable.insert(k);
            }
        }
    }
    let mut findings = Vec::new();
    let mut ids = IdSpace::default();
    for fm in files {
        for f in fm.fns.iter().filter(|f| !f.is_test) {
            if !reachable.contains(&fn_key(&fm.path, &f.qual)) {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let mut sites: Vec<(Kind_, (u32, u32))> = panic_sites(&fm.lexed.toks, open, close)
                .into_iter()
                .collect();
            sites.sort_by_key(|(k, _)| *k);
            for (kind, (count, first_line)) in sites {
                if fm.lexed.allowed(Pass::PanicSurface.slug(), first_line) {
                    continue;
                }
                findings.push(Finding {
                    id: ids.id(Pass::PanicSurface, &fm.path, &f.qual, kind.name()),
                    pass: Pass::PanicSurface,
                    file: fm.path.clone(),
                    line: first_line,
                    function: f.qual.clone(),
                    message: format!(
                        "{count} {} site(s) in a function reachable from the public API \
                         (first at line {first_line})",
                        kind.name()
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileModel;

    fn run_on(src: &str) -> Vec<Finding> {
        let m = FileModel::build("t.rs", src, false);
        run(&[&m])
    }

    #[test]
    fn inventories_reachable_panics() {
        let f = run_on(
            "pub fn api() { internal_helper_x(); }\n\
             fn internal_helper_x() { let v: Vec<u8> = Vec::new(); v.first().unwrap(); }\n\
             fn unreached_helper() { panic!(\"never\"); }",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].function.contains("internal_helper_x"));
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn pub_crate_is_not_a_root_and_tests_dont_count() {
        let f = run_on(
            "pub(crate) fn internal_api() { x.unwrap(); }\n\
             #[cfg(test)] mod t { pub fn t1() { y.unwrap(); } }",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn indexing_is_counted_but_literals_are_not() {
        let f =
            run_on("pub fn api(buf: &[u8]) -> u8 { let a = [0u8; 4]; let v = vec![1]; buf[3] }");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("indexing"));
        assert!(f[0].message.contains("1 indexing site"));
    }
}
