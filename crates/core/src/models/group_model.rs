//! Interleaving models of the group-commit protocol.
//!
//! Two models, two halves of the protocol:
//!
//! * [`GroupModel`] — the leader's *batch* half: WAL checkpoint, append
//!   loop that may release the core lock inside `append_with_space`
//!   (waiting out an epoch truncation), single force, and the
//!   `wait_generation`-guarded rollback on force failure. The property at
//!   stake is that a rollback never destroys records appended by another
//!   thread while the leader's lock was released.
//! * [`BatonModel`] — the committer's *queue* half: enqueue, wait on the
//!   group condvar or take the leadership baton, leader publishes every
//!   queued outcome and hands off. The property at stake is that every
//!   committer eventually observes exactly one outcome — no lost wakeup,
//!   no slot stranded in the queue.

use super::explore::Model;

const DONE: u8 = 99;

/// Leader / truncator / flusher model of the batch-rollback protocol.
///
/// Threads:
/// * **0 — leader**: holds the core lock across `ckpt → append A →
///   append B → force → (rollback) → publish`, except that an append
///   issued while an epoch is in flight waits on `epoch_done`,
///   releasing the lock (and bumping `wait_gen` on wake, as
///   `append_with_space` does).
/// * **1 — truncator**: the three-phase epoch truncation — snapshot
///   under the lock, apply off-lock, complete under the lock and
///   `notify_all`.
/// * **2 — flusher**: an independent committer whose (small) record
///   appends without waiting and forces immediately — the thread whose
///   record a bad rollback would destroy.
///
/// The leader's appends wait whenever an epoch is in flight (modeling
/// "batch does not fit until the frozen span is freed"); the flusher's
/// single record always fits. This asymmetry is what creates the
/// interference window the generation guard exists for.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct GroupModel {
    /// Model mutation: `false` removes the `wait_generation` guard, the
    /// bug the explorer must be able to exhibit.
    pub guard_enabled: bool,
    /// Whether the leader's force fails (exercising the rollback path).
    pub force_fails: bool,

    lock: Option<u8>,
    epoch: bool,
    wait_gen: u8,
    /// Appended records, in log order, by owner thread id.
    log: Vec<u8>,
    /// Length of the durable (forced) log prefix.
    forced: u8,
    /// Bitmask of threads waiting on `epoch_done`.
    epoch_waiters: u8,

    leader_pc: u8,
    ckpt_len: u8,
    ckpt_gen: u8,
    leader_outcome: Option<bool>,
    rollbacks: u8,

    trunc_pc: u8,

    flush_pc: u8,
    flusher_forced: bool,
}

impl GroupModel {
    pub fn new(guard_enabled: bool, force_fails: bool) -> Self {
        GroupModel {
            guard_enabled,
            force_fails,
            lock: None,
            epoch: false,
            wait_gen: 0,
            log: Vec::new(),
            forced: 0,
            epoch_waiters: 0,
            leader_pc: 0,
            ckpt_len: 0,
            ckpt_gen: 0,
            leader_outcome: None,
            rollbacks: 0,
            trunc_pc: 0,
            flush_pc: 0,
            flusher_forced: false,
        }
    }

    fn leader_append(&mut self, waiting_pc: u8, next_pc: u8) {
        if self.epoch {
            // append_with_space: wait on epoch_done, releasing the lock.
            self.epoch_waiters |= 1;
            self.lock = None;
            self.leader_pc = waiting_pc;
        } else {
            self.log.push(0);
            self.leader_pc = next_pc;
        }
    }

    fn step_leader(&mut self) {
        match self.leader_pc {
            0 => {
                self.lock = Some(0);
                self.leader_pc = 1;
            }
            1 => {
                // wal.checkpoint() + wait_generation snapshot.
                self.ckpt_len = self.log.len() as u8;
                self.ckpt_gen = self.wait_gen;
                self.leader_pc = 2;
            }
            2 => self.leader_append(20, 3),
            3 => self.leader_append(22, 4),
            4 => {
                if self.force_fails {
                    self.leader_pc = 5;
                } else {
                    self.forced = self.log.len() as u8;
                    self.leader_pc = 6;
                }
            }
            5 => {
                // Rollback, guarded by the generation check.
                if !self.guard_enabled || self.wait_gen == self.ckpt_gen {
                    self.log.truncate(self.ckpt_len as usize);
                    self.forced = self.forced.min(self.ckpt_len);
                    self.rollbacks += 1;
                }
                self.leader_pc = 6;
            }
            6 => {
                self.leader_outcome = Some(!self.force_fails);
                self.lock = None;
                self.leader_pc = DONE;
            }
            // Woken from an epoch wait: reacquire the lock, bump the
            // generation (as append_with_space does), retry the append.
            21 => {
                self.lock = Some(0);
                self.wait_gen += 1;
                self.leader_pc = 2;
            }
            23 => {
                self.lock = Some(0);
                self.wait_gen += 1;
                self.leader_pc = 3;
            }
            _ => unreachable!("leader stepped while blocked"),
        }
    }

    fn step_truncator(&mut self) {
        match self.trunc_pc {
            0 => {
                self.lock = Some(1);
                self.trunc_pc = 1;
            }
            1 => {
                // Phase 1: snapshot the boundary.
                self.epoch = true;
                self.trunc_pc = 2;
            }
            2 => {
                self.lock = None;
                self.trunc_pc = 3;
            }
            3 => {
                // Phase 2: apply the frozen span off-lock.
                self.trunc_pc = 4;
            }
            4 => {
                self.lock = Some(1);
                self.trunc_pc = 5;
            }
            5 => {
                // Phase 3: advance the head, wake every epoch waiter.
                self.epoch = false;
                if self.epoch_waiters & 1 != 0 {
                    self.leader_pc = match self.leader_pc {
                        20 => 21,
                        22 => 23,
                        pc => pc,
                    };
                }
                self.epoch_waiters = 0;
                self.trunc_pc = 6;
            }
            6 => {
                self.lock = None;
                self.trunc_pc = DONE;
            }
            _ => unreachable!("truncator stepped while blocked"),
        }
    }

    fn step_flusher(&mut self) {
        match self.flush_pc {
            0 => {
                self.lock = Some(2);
                self.flush_pc = 1;
            }
            1 => {
                self.log.push(2);
                self.flush_pc = 2;
            }
            2 => {
                // A force makes the whole log prefix durable.
                self.forced = self.log.len() as u8;
                self.flusher_forced = true;
                self.flush_pc = 3;
            }
            3 => {
                self.lock = None;
                self.flush_pc = DONE;
            }
            _ => unreachable!("flusher stepped while blocked"),
        }
    }
}

impl Model for GroupModel {
    fn threads(&self) -> usize {
        3
    }

    fn runnable(&self, t: usize) -> bool {
        match t {
            0 => match self.leader_pc {
                DONE | 20 | 22 => false,            // finished / parked on epoch_done
                0 | 21 | 23 => self.lock.is_none(), // acquire steps
                _ => self.lock == Some(0),
            },
            1 => match self.trunc_pc {
                DONE => false,
                0 | 4 => self.lock.is_none(), // phase 1 / phase 3 acquire
                3 => true,                    // the off-lock apply
                _ => self.lock == Some(1),
            },
            _ => match self.flush_pc {
                DONE => false,
                0 => self.lock.is_none(),
                _ => self.lock == Some(2),
            },
        }
    }

    fn finished(&self, t: usize) -> bool {
        match t {
            0 => self.leader_pc == DONE,
            1 => self.trunc_pc == DONE,
            _ => self.flush_pc == DONE,
        }
    }

    fn step(&mut self, t: usize) {
        match t {
            0 => self.step_leader(),
            1 => self.step_truncator(),
            _ => self.step_flusher(),
        }
    }

    fn check(&self) -> Result<(), String> {
        if (self.forced as usize) > self.log.len() {
            return Err("durable prefix longer than the log".into());
        }
        if self.rollbacks > 1 {
            return Err("batch rollback ran twice".into());
        }
        if self.flusher_forced && !self.log.contains(&2) {
            return Err(
                "rollback destroyed another thread's forced record (generation guard missing)"
                    .into(),
            );
        }
        let all_done = self.leader_pc == DONE && self.trunc_pc == DONE && self.flush_pc == DONE;
        if all_done {
            if self.leader_outcome.is_none() {
                return Err("leader finished without publishing an outcome".into());
            }
            if self.epoch || self.epoch_waiters != 0 {
                return Err("epoch state leaked past termination".into());
            }
            if !self.force_fails && self.forced as usize != self.log.len() {
                return Err("successful batch left unforced records".into());
            }
        }
        Ok(())
    }
}

/// Committer-side model of the leadership baton and follower wakeup.
///
/// Two committers enqueue one slot each, then loop exactly like
/// `group_commit_enqueue`: take the outcome if published, wait on the
/// group condvar if a leader is active, otherwise take the baton, commit
/// the whole queue, release the baton, and notify. The explorer's
/// deadlock detection doubles as the lost-wakeup check: a committer
/// parked on the condvar after its wakeup already fired can never finish.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BatonModel {
    /// Model mutation: `false` splits the condvar wait into
    /// release-then-park (the classic lost-wakeup bug); `true` parks and
    /// releases atomically, as `Condvar::wait` does.
    pub atomic_wait: bool,

    lock: Option<u8>,
    queue: Vec<u8>,
    leader_active: bool,
    outcome_published: [bool; 2],
    outcome_taken: [bool; 2],
    /// Bitmask of committers parked on the group condvar.
    waiters: u8,
    pc: [u8; 2],
}

impl BatonModel {
    pub fn new(atomic_wait: bool) -> Self {
        BatonModel {
            atomic_wait,
            lock: None,
            queue: Vec::new(),
            leader_active: false,
            outcome_published: [false; 2],
            outcome_taken: [false; 2],
            waiters: 0,
            pc: [0; 2],
        }
    }

    fn step_committer(&mut self, i: usize) {
        match self.pc[i] {
            0 => {
                self.lock = Some(i as u8);
                self.pc[i] = 1;
            }
            1 => {
                self.queue.push(i as u8);
                self.lock = None;
                self.pc[i] = 2;
            }
            2 => {
                self.lock = Some(i as u8);
                self.pc[i] = 3;
            }
            3 => {
                if self.outcome_published[i] {
                    self.outcome_taken[i] = true;
                    self.lock = None;
                    self.pc[i] = DONE;
                } else if self.leader_active {
                    if self.atomic_wait {
                        // Condvar::wait — park and release in one step.
                        self.waiters |= 1 << i;
                        self.lock = None;
                        self.pc[i] = 4;
                    } else {
                        // Buggy wait: release first, park later; a notify
                        // in between is lost.
                        self.lock = None;
                        self.pc[i] = 5;
                    }
                } else {
                    self.leader_active = true;
                    self.lock = None;
                    self.pc[i] = 6;
                }
            }
            5 => {
                self.waiters |= 1 << i;
                self.pc[i] = 4;
            }
            6 => {
                // Leader round: commit every queued slot (the real leader
                // takes the core lock here, not the group lock).
                for &j in &self.queue {
                    self.outcome_published[j as usize] = true;
                }
                self.queue.clear();
                self.pc[i] = 7;
            }
            7 => {
                self.lock = Some(i as u8);
                self.pc[i] = 8;
            }
            8 => {
                self.leader_active = false;
                // notify_all
                for j in 0..2 {
                    if self.waiters & (1 << j) != 0 {
                        self.pc[j] = 2;
                    }
                }
                self.waiters = 0;
                self.lock = None;
                self.pc[i] = 2;
            }
            _ => unreachable!("committer stepped while parked"),
        }
    }
}

impl Model for BatonModel {
    fn threads(&self) -> usize {
        2
    }

    fn runnable(&self, t: usize) -> bool {
        match self.pc[t] {
            DONE | 4 => false,
            0 | 2 | 7 => self.lock.is_none(),
            5 | 6 => true,
            _ => self.lock == Some(t as u8),
        }
    }

    fn finished(&self, t: usize) -> bool {
        self.pc[t] == DONE
    }

    fn step(&mut self, t: usize) {
        self.step_committer(t);
    }

    fn check(&self) -> Result<(), String> {
        for i in 0..2 {
            if self.outcome_taken[i] && !self.outcome_published[i] {
                return Err(format!("committer {i} took an unpublished outcome"));
            }
        }
        if self.pc.iter().all(|&pc| pc == DONE) {
            if self.leader_active {
                return Err("leadership baton leaked past termination".into());
            }
            if !self.queue.is_empty() {
                return Err("slot stranded in the queue".into());
            }
            if !(self.outcome_taken[0] && self.outcome_taken[1]) {
                return Err("a committer finished without its outcome".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::explore::explore;

    #[test]
    fn generation_guard_protects_interleaved_records() {
        let report = explore(GroupModel::new(true, true), 2_000_000);
        assert!(report.complete, "state space fully covered");
        assert!(
            report.violation.is_none(),
            "guarded rollback is safe in every interleaving: {:?}",
            report.violation
        );
        assert!(report.states > 100, "nontrivial state space");
    }

    #[test]
    fn removing_the_generation_guard_is_caught() {
        let report = explore(GroupModel::new(false, true), 2_000_000);
        let (msg, schedule) = report
            .violation
            .expect("unguarded rollback must destroy a forced record in some schedule");
        assert!(msg.contains("destroyed"), "unexpected violation: {msg}");
        assert!(
            !schedule.is_empty(),
            "violation carries its witness schedule"
        );
    }

    #[test]
    fn successful_batches_are_safe_in_every_interleaving() {
        let report = explore(GroupModel::new(true, false), 2_000_000);
        assert!(report.complete);
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn baton_handoff_never_strands_a_committer() {
        let report = explore(BatonModel::new(true), 2_000_000);
        assert!(report.complete, "state space fully covered");
        assert!(
            report.violation.is_none(),
            "no lost wakeup, every slot commits: {:?}",
            report.violation
        );
        assert!(report.states > 50, "nontrivial state space");
    }

    #[test]
    fn non_atomic_wait_loses_a_wakeup() {
        let report = explore(BatonModel::new(false), 2_000_000);
        let (msg, _) = report
            .violation
            .expect("release-then-park must deadlock in some schedule");
        assert!(msg.contains("deadlock"), "unexpected violation: {msg}");
    }
}
