//! Operation statistics.
//!
//! The paper instrumented RVM "to keep track of the total volume of log
//! data eliminated by each technique" to produce Table 2 (§7.3). The same
//! counters back this library's `query` operation, the Table 2 benchmark,
//! and the optimization ablations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of group-commit batch-size histogram buckets; see
/// [`batch_size_bucket`].
pub const GROUP_BATCH_BUCKETS: usize = 6;

/// Maps a group-commit batch size to its histogram bucket: sizes 1, 2,
/// 3–4, 5–8, 9–16, and 17+.
pub fn batch_size_bucket(size: u64) -> usize {
    match size {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Fault-tolerance counters, shared with the retry layer.
///
/// These live behind an `Arc` because the retry wrappers around the log
/// device and segment resolver are built before the `Rvm` instance that
/// owns the [`Stats`] — both sides update the same cells.
#[derive(Debug, Default)]
pub(crate) struct FaultCounters {
    /// Device operations retried after a transient failure.
    pub(crate) io_retries: AtomicU64,
    /// Device operations that ultimately succeeded after one or more
    /// transient failures.
    pub(crate) transient_faults_healed: AtomicU64,
    /// Times an instance transitioned to the poisoned state.
    pub(crate) poisonings: AtomicU64,
}

/// Media-integrity counters, shared with region load paths and the
/// scrubber.
///
/// Like [`FaultCounters`], these live behind an `Arc`: mapped regions
/// verify pages as they load them (possibly long after `query` calls
/// begin) and the scrub pass runs on its own thread — all of them update
/// the same cells the stats snapshot reads.
#[derive(Debug, Default)]
pub(crate) struct MediaCounters {
    /// Segment pages whose checksums were verified (scrub + verified
    /// loads).
    pub(crate) pages_scrubbed: AtomicU64,
    /// Checksum mismatches detected on segment pages.
    pub(crate) corruptions_detected: AtomicU64,
    /// Mismatches repaired (mirror read-repair or log reconstruction).
    pub(crate) corruptions_repaired: AtomicU64,
    /// Regions quarantined into degraded mode by unrecoverable pages.
    pub(crate) regions_quarantined: AtomicU64,
}

/// Live counters, updated atomically by the library.
#[derive(Debug, Default)]
pub struct Stats {
    pub(crate) txns_committed: AtomicU64,
    pub(crate) txns_aborted: AtomicU64,
    pub(crate) flush_commits: AtomicU64,
    pub(crate) no_flush_commits: AtomicU64,
    pub(crate) set_range_calls: AtomicU64,
    /// Sum of requested `set_range` lengths (before intra coalescing).
    pub(crate) bytes_set_range_gross: AtomicU64,
    /// Record bytes appended to the log (headers + data, after all
    /// optimizations, before block padding).
    pub(crate) bytes_logged: AtomicU64,
    /// Data bytes suppressed by intra-transaction optimization.
    pub(crate) bytes_saved_intra: AtomicU64,
    /// Record bytes suppressed by inter-transaction optimization.
    pub(crate) bytes_saved_inter: AtomicU64,
    pub(crate) log_forces: AtomicU64,
    /// Group-commit batches forced (each batch is one log force).
    pub(crate) group_commit_batches: AtomicU64,
    /// Flush-mode transactions committed through group-commit batches.
    pub(crate) group_commit_txns: AtomicU64,
    /// Batch-size histogram (additive buckets, so deltas stay field-wise).
    pub(crate) group_commit_batch_sizes: [AtomicU64; GROUP_BATCH_BUCKETS],
    /// Batches submitted through the pipelined log writer (staged fill +
    /// async submit instead of a synchronous force).
    pub(crate) pipeline_submits: AtomicU64,
    /// High-water mark of log forces in flight at once. NOT additive:
    /// snapshots report the absolute mark, and `delta_since` carries the
    /// later snapshot's value through unchanged. Above 1 proves forces
    /// actually overlapped.
    pub(crate) forces_in_flight_hw: AtomicU64,
    /// Nanoseconds pipelined leaders spent blocked waiting for a free
    /// staging buffer (both in flight): the pipeline's backpressure.
    pub(crate) pipeline_stall_ns: AtomicU64,
    pub(crate) spool_flushes: AtomicU64,
    pub(crate) epoch_truncations: AtomicU64,
    /// Epochs completed by the *concurrent* protocol (snapshot under the
    /// lock, apply off-lock); `epoch_truncations` also counts the
    /// synchronous space-critical fallback.
    pub(crate) epochs_truncated: AtomicU64,
    /// Transactions that committed while an epoch apply was in flight —
    /// direct evidence that truncation no longer stalls the pipeline.
    pub(crate) commits_during_truncation: AtomicU64,
    /// Nanoseconds commit-path threads spent blocked on truncation (the
    /// space-critical synchronous epoch, or waiting out an in-flight
    /// epoch when the log was full).
    pub(crate) truncation_stall_ns: AtomicU64,
    /// Log bytes scanned by epoch truncation.
    pub(crate) truncation_bytes_scanned: AtomicU64,
    /// Disjoint intervals applied to segments by epoch truncation.
    pub(crate) truncation_ranges_applied: AtomicU64,
    /// Bytes applied to segments by epoch truncation.
    pub(crate) truncation_bytes_applied: AtomicU64,
    pub(crate) incremental_steps: AtomicU64,
    pub(crate) pages_written_incremental: AtomicU64,
    /// Unlogged-write violations detected by the commit-time checker.
    pub(crate) check_unlogged_writes: AtomicU64,
    /// Overlapping `set_range` declarations from concurrent transactions.
    pub(crate) check_range_conflicts: AtomicU64,
    pub(crate) fault: Arc<FaultCounters>,
    pub(crate) media: Arc<MediaCounters>,
}

impl Stats {
    pub(crate) fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            txns_committed: self.txns_committed.load(Ordering::Relaxed),
            txns_aborted: self.txns_aborted.load(Ordering::Relaxed),
            flush_commits: self.flush_commits.load(Ordering::Relaxed),
            no_flush_commits: self.no_flush_commits.load(Ordering::Relaxed),
            set_range_calls: self.set_range_calls.load(Ordering::Relaxed),
            bytes_set_range_gross: self.bytes_set_range_gross.load(Ordering::Relaxed),
            bytes_logged: self.bytes_logged.load(Ordering::Relaxed),
            bytes_saved_intra: self.bytes_saved_intra.load(Ordering::Relaxed),
            bytes_saved_inter: self.bytes_saved_inter.load(Ordering::Relaxed),
            log_forces: self.log_forces.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            group_commit_txns: self.group_commit_txns.load(Ordering::Relaxed),
            group_commit_batch_sizes: std::array::from_fn(|i| {
                self.group_commit_batch_sizes[i].load(Ordering::Relaxed)
            }),
            pipeline_submits: self.pipeline_submits.load(Ordering::Relaxed),
            forces_in_flight_hw: self.forces_in_flight_hw.load(Ordering::Relaxed),
            pipeline_stall_ns: self.pipeline_stall_ns.load(Ordering::Relaxed),
            spool_flushes: self.spool_flushes.load(Ordering::Relaxed),
            epoch_truncations: self.epoch_truncations.load(Ordering::Relaxed),
            epochs_truncated: self.epochs_truncated.load(Ordering::Relaxed),
            commits_during_truncation: self.commits_during_truncation.load(Ordering::Relaxed),
            truncation_stall_ns: self.truncation_stall_ns.load(Ordering::Relaxed),
            truncation_bytes_scanned: self.truncation_bytes_scanned.load(Ordering::Relaxed),
            truncation_ranges_applied: self.truncation_ranges_applied.load(Ordering::Relaxed),
            truncation_bytes_applied: self.truncation_bytes_applied.load(Ordering::Relaxed),
            incremental_steps: self.incremental_steps.load(Ordering::Relaxed),
            pages_written_incremental: self.pages_written_incremental.load(Ordering::Relaxed),
            check_unlogged_writes: self.check_unlogged_writes.load(Ordering::Relaxed),
            check_range_conflicts: self.check_range_conflicts.load(Ordering::Relaxed),
            io_retries: self.fault.io_retries.load(Ordering::Relaxed),
            transient_faults_healed: self.fault.transient_faults_healed.load(Ordering::Relaxed),
            poisonings: self.fault.poisonings.load(Ordering::Relaxed),
            pages_scrubbed: self.media.pages_scrubbed.load(Ordering::Relaxed),
            corruptions_detected: self.media.corruptions_detected.load(Ordering::Relaxed),
            corruptions_repaired: self.media.corruptions_repaired.load(Ordering::Relaxed),
            regions_quarantined: self.media.regions_quarantined.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the library's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transactions committed (both modes).
    pub txns_committed: u64,
    /// Transactions aborted.
    pub txns_aborted: u64,
    /// Commits in flush mode.
    pub flush_commits: u64,
    /// Commits in no-flush (lazy) mode.
    pub no_flush_commits: u64,
    /// `set_range` invocations.
    pub set_range_calls: u64,
    /// Sum of requested `set_range` lengths before coalescing.
    pub bytes_set_range_gross: u64,
    /// Record bytes written to the log after optimizations.
    pub bytes_logged: u64,
    /// Data bytes suppressed by intra-transaction optimization.
    pub bytes_saved_intra: u64,
    /// Record bytes suppressed by inter-transaction optimization.
    pub bytes_saved_inter: u64,
    /// Synchronous log forces.
    pub log_forces: u64,
    /// Group-commit batches forced (each batch is one log force).
    pub group_commit_batches: u64,
    /// Flush-mode transactions committed through group-commit batches.
    pub group_commit_txns: u64,
    /// Group-commit batch-size histogram: batches of size 1, 2, 3–4,
    /// 5–8, 9–16, and 17+ (see [`batch_size_bucket`]).
    pub group_commit_batch_sizes: [u64; GROUP_BATCH_BUCKETS],
    /// Batches submitted through the pipelined log writer.
    pub pipeline_submits: u64,
    /// High-water mark of log forces in flight at once (absolute, not
    /// additive; `delta_since` carries the later value through). Above 1
    /// means forces genuinely overlapped.
    pub forces_in_flight_hw: u64,
    /// Nanoseconds pipelined leaders spent waiting for a staging buffer.
    pub pipeline_stall_ns: u64,
    /// Spool flushes (each covers many no-flush commits).
    pub spool_flushes: u64,
    /// Completed epoch truncations.
    pub epoch_truncations: u64,
    /// Epochs completed by the concurrent protocol (apply ran off-lock
    /// while commits kept appending); `epoch_truncations` additionally
    /// counts the synchronous space-critical fallback.
    pub epochs_truncated: u64,
    /// Transactions committed while an epoch apply was in flight.
    pub commits_during_truncation: u64,
    /// Nanoseconds commit-path threads spent blocked on truncation.
    pub truncation_stall_ns: u64,
    /// Log bytes scanned by epoch truncation.
    pub truncation_bytes_scanned: u64,
    /// Disjoint intervals applied to segments by epoch truncation.
    pub truncation_ranges_applied: u64,
    /// Bytes applied to segments by epoch truncation.
    pub truncation_bytes_applied: u64,
    /// Incremental truncation steps executed.
    pub incremental_steps: u64,
    /// Pages written to segments by incremental truncation.
    pub pages_written_incremental: u64,
    /// Unlogged-write violations detected by the commit-time checker
    /// (`Tuning::check_unlogged_writes`).
    pub check_unlogged_writes: u64,
    /// Overlapping `set_range` declarations from concurrent transactions
    /// (`Tuning::check_range_conflicts`).
    pub check_range_conflicts: u64,
    /// Device operations retried after a transient failure.
    pub io_retries: u64,
    /// Device operations that succeeded after transient failure(s).
    pub transient_faults_healed: u64,
    /// Times the instance transitioned to the poisoned state.
    pub poisonings: u64,
    /// Segment pages checksum-verified (scrub passes + verified loads).
    pub pages_scrubbed: u64,
    /// Checksum mismatches detected on segment pages.
    pub corruptions_detected: u64,
    /// Mismatches repaired (mirror read-repair or log reconstruction).
    pub corruptions_repaired: u64,
    /// Regions quarantined into degraded mode.
    pub regions_quarantined: u64,
}

impl StatsSnapshot {
    /// Fraction of potential log traffic suppressed by intra-transaction
    /// optimization, as Table 2 reports it: savings divided by what the
    /// log volume would have been without any optimization.
    pub fn intra_savings_fraction(&self) -> f64 {
        let original = self.bytes_logged + self.bytes_saved_intra + self.bytes_saved_inter;
        if original == 0 {
            0.0
        } else {
            self.bytes_saved_intra as f64 / original as f64
        }
    }

    /// Fraction suppressed by inter-transaction optimization (Table 2).
    pub fn inter_savings_fraction(&self) -> f64 {
        let original = self.bytes_logged + self.bytes_saved_intra + self.bytes_saved_inter;
        if original == 0 {
            0.0
        } else {
            self.bytes_saved_inter as f64 / original as f64
        }
    }

    /// Total savings fraction (Table 2's final column).
    pub fn total_savings_fraction(&self) -> f64 {
        self.intra_savings_fraction() + self.inter_savings_fraction()
    }

    /// Log forces per flush-mode commit: the amortization ratio group
    /// commit exists to shrink. 1.0 means every flush commit paid its own
    /// force; below 1.0 forces are being shared. In mixed workloads the
    /// numerator also counts spool-flush forces, so read this on
    /// flush-dominated runs (or on a `delta_since` window).
    pub fn forces_per_flush_commit(&self) -> f64 {
        if self.flush_commits == 0 {
            0.0
        } else {
            self.log_forces as f64 / self.flush_commits as f64
        }
    }

    /// Mean transactions per group-commit batch (0 when no batch ran).
    pub fn mean_group_batch(&self) -> f64 {
        if self.group_commit_batches == 0 {
            0.0
        } else {
            self.group_commit_txns as f64 / self.group_commit_batches as f64
        }
    }

    /// Field-wise difference from an earlier snapshot.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            txns_committed: self.txns_committed - earlier.txns_committed,
            txns_aborted: self.txns_aborted - earlier.txns_aborted,
            flush_commits: self.flush_commits - earlier.flush_commits,
            no_flush_commits: self.no_flush_commits - earlier.no_flush_commits,
            set_range_calls: self.set_range_calls - earlier.set_range_calls,
            bytes_set_range_gross: self.bytes_set_range_gross - earlier.bytes_set_range_gross,
            bytes_logged: self.bytes_logged - earlier.bytes_logged,
            bytes_saved_intra: self.bytes_saved_intra - earlier.bytes_saved_intra,
            bytes_saved_inter: self.bytes_saved_inter - earlier.bytes_saved_inter,
            log_forces: self.log_forces - earlier.log_forces,
            group_commit_batches: self.group_commit_batches - earlier.group_commit_batches,
            group_commit_txns: self.group_commit_txns - earlier.group_commit_txns,
            group_commit_batch_sizes: std::array::from_fn(|i| {
                self.group_commit_batch_sizes[i] - earlier.group_commit_batch_sizes[i]
            }),
            pipeline_submits: self.pipeline_submits - earlier.pipeline_submits,
            // A high-water mark is not additive; the delta window reports
            // the mark as of its end.
            forces_in_flight_hw: self.forces_in_flight_hw,
            pipeline_stall_ns: self.pipeline_stall_ns - earlier.pipeline_stall_ns,
            spool_flushes: self.spool_flushes - earlier.spool_flushes,
            epoch_truncations: self.epoch_truncations - earlier.epoch_truncations,
            epochs_truncated: self.epochs_truncated - earlier.epochs_truncated,
            commits_during_truncation: self.commits_during_truncation
                - earlier.commits_during_truncation,
            truncation_stall_ns: self.truncation_stall_ns - earlier.truncation_stall_ns,
            truncation_bytes_scanned: self.truncation_bytes_scanned
                - earlier.truncation_bytes_scanned,
            truncation_ranges_applied: self.truncation_ranges_applied
                - earlier.truncation_ranges_applied,
            truncation_bytes_applied: self.truncation_bytes_applied
                - earlier.truncation_bytes_applied,
            incremental_steps: self.incremental_steps - earlier.incremental_steps,
            pages_written_incremental: self.pages_written_incremental
                - earlier.pages_written_incremental,
            check_unlogged_writes: self.check_unlogged_writes - earlier.check_unlogged_writes,
            check_range_conflicts: self.check_range_conflicts - earlier.check_range_conflicts,
            io_retries: self.io_retries - earlier.io_retries,
            transient_faults_healed: self.transient_faults_healed - earlier.transient_faults_healed,
            poisonings: self.poisonings - earlier.poisonings,
            pages_scrubbed: self.pages_scrubbed - earlier.pages_scrubbed,
            corruptions_detected: self.corruptions_detected - earlier.corruptions_detected,
            corruptions_repaired: self.corruptions_repaired - earlier.corruptions_repaired,
            regions_quarantined: self.regions_quarantined - earlier.regions_quarantined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_fractions() {
        let snap = StatsSnapshot {
            bytes_logged: 60,
            bytes_saved_intra: 25,
            bytes_saved_inter: 15,
            ..Default::default()
        };
        assert!((snap.intra_savings_fraction() - 0.25).abs() < 1e-9);
        assert!((snap.inter_savings_fraction() - 0.15).abs() < 1e-9);
        assert!((snap.total_savings_fraction() - 0.40).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_savings() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.intra_savings_fraction(), 0.0);
        assert_eq!(snap.total_savings_fraction(), 0.0);
    }

    #[test]
    fn snapshot_and_delta() {
        let stats = Stats::default();
        stats.add(&stats.txns_committed, 5);
        stats.add(&stats.bytes_logged, 100);
        let s1 = stats.snapshot();
        stats.add(&stats.txns_committed, 3);
        let d = stats.snapshot().delta_since(&s1);
        assert_eq!(d.txns_committed, 3);
        assert_eq!(d.bytes_logged, 0);
    }

    #[test]
    fn batch_size_buckets_partition_the_sizes() {
        assert_eq!(batch_size_bucket(1), 0);
        assert_eq!(batch_size_bucket(2), 1);
        assert_eq!(batch_size_bucket(3), 2);
        assert_eq!(batch_size_bucket(4), 2);
        assert_eq!(batch_size_bucket(5), 3);
        assert_eq!(batch_size_bucket(8), 3);
        assert_eq!(batch_size_bucket(9), 4);
        assert_eq!(batch_size_bucket(16), 4);
        assert_eq!(batch_size_bucket(17), 5);
        assert_eq!(batch_size_bucket(1000), 5);
    }

    #[test]
    fn group_histogram_deltas_are_field_wise() {
        let stats = Stats::default();
        stats.add(&stats.group_commit_batches, 2);
        stats.add(&stats.group_commit_txns, 9);
        stats.add(&stats.group_commit_batch_sizes[batch_size_bucket(1)], 1);
        stats.add(&stats.group_commit_batch_sizes[batch_size_bucket(8)], 1);
        let s1 = stats.snapshot();
        stats.add(&stats.group_commit_batches, 1);
        stats.add(&stats.group_commit_txns, 3);
        stats.add(&stats.group_commit_batch_sizes[batch_size_bucket(3)], 1);
        let d = stats.snapshot().delta_since(&s1);
        assert_eq!(d.group_commit_batches, 1);
        assert_eq!(d.group_commit_txns, 3);
        assert_eq!(d.group_commit_batch_sizes, [0, 0, 1, 0, 0, 0]);
        assert!((d.mean_group_batch() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn amortization_ratio() {
        let snap = StatsSnapshot {
            flush_commits: 8,
            log_forces: 2,
            ..Default::default()
        };
        assert!((snap.forces_per_flush_commit() - 0.25).abs() < 1e-9);
        assert_eq!(StatsSnapshot::default().forces_per_flush_commit(), 0.0);
        assert_eq!(StatsSnapshot::default().mean_group_batch(), 0.0);
    }
}
