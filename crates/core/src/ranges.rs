//! Byte-range bookkeeping: coalescing range sets and latest-wins interval
//! maps.
//!
//! Two mechanisms in the paper reduce to interval arithmetic:
//!
//! * **Intra-transaction optimization** (§5.2): duplicate, overlapping and
//!   adjacent `set_range` calls within one transaction are coalesced —
//!   [`RangeSet`] does this, and reports which sub-ranges were *newly*
//!   covered so old-value capture copies each byte at most once.
//! * **Recovery trees** (§5.1.2): scanning the log tail→head, the first
//!   (newest) value seen for each byte wins — [`IntervalMap`] implements
//!   `insert_if_uncovered` for this.

use std::collections::BTreeMap;

/// A half-open byte range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteRange {
    /// First byte in the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

impl ByteRange {
    /// Creates a range from start and length.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` overflows.
    pub fn at(start: u64, len: u64) -> Self {
        Self {
            start,
            end: start.checked_add(len).expect("range end overflows u64"),
        }
    }

    /// Length of the range in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Returns `true` for an empty range.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Returns `true` if the ranges overlap or touch (are adjacent).
    pub fn touches(&self, other: &ByteRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Returns `true` if `other` lies entirely within `self`.
    pub fn contains(&self, other: &ByteRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

/// A set of disjoint, coalesced byte ranges.
///
/// Inserting a range that duplicates, overlaps, or is adjacent to existing
/// ranges merges them into one — the intra-transaction optimization. The
/// insert reports the previously-uncovered pieces so the caller can capture
/// old values exactly once per byte.
///
/// # Examples
///
/// ```
/// use rvm::ranges::{ByteRange, RangeSet};
///
/// let mut set = RangeSet::new();
/// assert_eq!(set.insert(ByteRange::at(0, 10)), vec![ByteRange::at(0, 10)]);
/// // A duplicate is harmless and adds nothing (§5.2).
/// assert_eq!(set.insert(ByteRange::at(0, 10)), vec![]);
/// // An overlapping range contributes only its new part.
/// assert_eq!(set.insert(ByteRange::at(5, 10)), vec![ByteRange::at(10, 5)]);
/// assert_eq!(set.iter().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// Maps start → end; invariant: disjoint and non-adjacent.
    ranges: BTreeMap<u64, u64>,
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `range`, coalescing with overlapping or adjacent members.
    ///
    /// Returns the sub-ranges of `range` that were not previously covered,
    /// in ascending order (empty if `range` was already fully covered).
    pub fn insert(&mut self, range: ByteRange) -> Vec<ByteRange> {
        if range.is_empty() {
            return Vec::new();
        }
        let mut new_start = range.start;
        let mut new_end = range.end;
        let mut newly = Vec::new();
        let mut cursor = range.start;

        // Collect members touching `range`: start ≤ range.end and
        // end ≥ range.start. Candidates begin at the last member starting
        // at or before range.end.
        let mut to_remove = Vec::new();
        for (&start, &end) in self.ranges.range(..=range.end) {
            if end < range.start {
                continue;
            }
            // Overlapping or adjacent: merge.
            if start > cursor {
                let gap_end = start.min(range.end);
                if cursor < gap_end {
                    newly.push(ByteRange {
                        start: cursor,
                        end: gap_end,
                    });
                }
            }
            cursor = cursor.max(end);
            new_start = new_start.min(start);
            new_end = new_end.max(end);
            to_remove.push(start);
        }
        if cursor < range.end {
            newly.push(ByteRange {
                start: cursor,
                end: range.end,
            });
        }
        for s in to_remove {
            self.ranges.remove(&s);
        }
        self.ranges.insert(new_start, new_end);
        newly
    }

    /// Returns `true` if every byte of `range` is covered.
    pub fn covers(&self, range: &ByteRange) -> bool {
        if range.is_empty() {
            return true;
        }
        match self.ranges.range(..=range.start).next_back() {
            Some((_, &end)) => end >= range.end,
            None => false,
        }
    }

    /// Iterates the coalesced ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ByteRange> + '_ {
        self.ranges
            .iter()
            .map(|(&start, &end)| ByteRange { start, end })
    }

    /// Total number of bytes covered.
    pub fn total_len(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Number of coalesced ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Returns `true` if no ranges are present.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Disjoint intervals each carrying a byte payload, with newest-wins
/// insertion.
///
/// This is the in-memory "tree of the latest committed changes" recovery
/// builds per data segment (§5.1.2): records are processed newest first and
/// [`IntervalMap::insert_if_uncovered`] keeps only the parts of older
/// records that newer ones did not already cover.
#[derive(Debug, Clone, Default)]
pub struct IntervalMap {
    /// start → payload; intervals are disjoint (adjacency is allowed).
    entries: BTreeMap<u64, Vec<u8>>,
}

impl IntervalMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `data` at `start`, keeping existing entries where they
    /// overlap (existing entries are newer). Returns the number of bytes
    /// actually inserted.
    pub fn insert_if_uncovered(&mut self, start: u64, data: &[u8]) -> u64 {
        let end = start + data.len() as u64;
        if data.is_empty() {
            return 0;
        }
        // Find the covered sub-ranges overlapping [start, end).
        let mut covered: Vec<(u64, u64)> = Vec::new();
        // An entry starting before `start` may still overlap it.
        if let Some((&s, payload)) = self.entries.range(..start).next_back() {
            let e = s + payload.len() as u64;
            if e > start {
                covered.push((s.max(start), e.min(end)));
            }
        }
        for (&s, payload) in self.entries.range(start..end) {
            let e = s + payload.len() as u64;
            covered.push((s, e.min(end)));
        }

        // Insert the gaps.
        let mut inserted = 0u64;
        let mut cursor = start;
        for (cs, ce) in covered.into_iter().chain(std::iter::once((end, end))) {
            if cursor < cs {
                let slice = &data[(cursor - start) as usize..(cs - start) as usize];
                self.entries.insert(cursor, slice.to_vec());
                inserted += cs - cursor;
            }
            cursor = cursor.max(ce);
        }
        inserted
    }

    /// Iterates `(start, payload)` in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> + '_ {
        self.entries.iter().map(|(&s, p)| (s, p.as_slice()))
    }

    /// Total bytes held.
    pub fn total_len(&self) -> u64 {
        self.entries.values().map(|p| p.len() as u64).sum()
    }

    /// Returns `true` if the map holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of disjoint intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Reads the map's view of `[start, start + buf.len())` into `buf`,
    /// leaving gaps untouched. Used by tests to check recovery contents.
    pub fn overlay_onto(&self, start: u64, buf: &mut [u8]) {
        let end = start + buf.len() as u64;
        let first = self
            .entries
            .range(..start)
            .next_back()
            .map(|(&s, _)| s)
            .unwrap_or(start);
        for (&s, payload) in self.entries.range(first..end) {
            let e = s + payload.len() as u64;
            if e <= start {
                continue;
            }
            let copy_start = s.max(start);
            let copy_end = e.min(end);
            let src = &payload[(copy_start - s) as usize..(copy_end - s) as usize];
            let dst = &mut buf[(copy_start - start) as usize..(copy_end - start) as usize];
            dst.copy_from_slice(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_range_basics() {
        let r = ByteRange::at(10, 5);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert!(r.touches(&ByteRange::at(15, 1)), "adjacency counts");
        assert!(r.touches(&ByteRange::at(12, 1)));
        assert!(!r.touches(&ByteRange::at(16, 1)));
        assert!(r.contains(&ByteRange::at(11, 2)));
        assert!(!r.contains(&ByteRange::at(11, 10)));
    }

    #[test]
    fn rangeset_disjoint_inserts() {
        let mut set = RangeSet::new();
        assert_eq!(set.insert(ByteRange::at(0, 4)), vec![ByteRange::at(0, 4)]);
        assert_eq!(set.insert(ByteRange::at(10, 4)), vec![ByteRange::at(10, 4)]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_len(), 8);
    }

    #[test]
    fn rangeset_duplicate_is_ignored() {
        let mut set = RangeSet::new();
        set.insert(ByteRange::at(0, 8));
        assert!(set.insert(ByteRange::at(0, 8)).is_empty());
        assert!(set.insert(ByteRange::at(2, 3)).is_empty());
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_len(), 8);
    }

    #[test]
    fn rangeset_adjacent_coalesce() {
        let mut set = RangeSet::new();
        set.insert(ByteRange::at(0, 4));
        assert_eq!(set.insert(ByteRange::at(4, 4)), vec![ByteRange::at(4, 4)]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap(), ByteRange { start: 0, end: 8 });
    }

    #[test]
    fn rangeset_overlap_reports_only_new_parts() {
        let mut set = RangeSet::new();
        set.insert(ByteRange::at(0, 10));
        set.insert(ByteRange::at(20, 10));
        // Bridges both, covering the gap [10, 20).
        let newly = set.insert(ByteRange::at(5, 20));
        assert_eq!(newly, vec![ByteRange { start: 10, end: 20 }]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_len(), 30);
    }

    #[test]
    fn rangeset_insert_spanning_multiple_gaps() {
        let mut set = RangeSet::new();
        set.insert(ByteRange::at(10, 2));
        set.insert(ByteRange::at(20, 2));
        set.insert(ByteRange::at(30, 2));
        let newly = set.insert(ByteRange::at(0, 40));
        assert_eq!(
            newly,
            vec![
                ByteRange { start: 0, end: 10 },
                ByteRange { start: 12, end: 20 },
                ByteRange { start: 22, end: 30 },
                ByteRange { start: 32, end: 40 },
            ]
        );
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_len(), 40);
    }

    #[test]
    fn rangeset_covers() {
        let mut set = RangeSet::new();
        set.insert(ByteRange::at(10, 10));
        assert!(set.covers(&ByteRange::at(10, 10)));
        assert!(set.covers(&ByteRange::at(12, 3)));
        assert!(!set.covers(&ByteRange::at(5, 10)));
        assert!(!set.covers(&ByteRange::at(15, 10)));
        assert!(set.covers(&ByteRange::at(15, 0)), "empty always covered");
    }

    #[test]
    fn rangeset_empty_insert_is_noop() {
        let mut set = RangeSet::new();
        assert!(set.insert(ByteRange::at(5, 0)).is_empty());
        assert!(set.is_empty());
    }

    #[test]
    fn interval_map_newest_wins() {
        let mut map = IntervalMap::new();
        // Newest record inserted first.
        assert_eq!(map.insert_if_uncovered(10, &[9, 9, 9, 9]), 4);
        // Older record overlapping it only contributes uncovered bytes.
        assert_eq!(map.insert_if_uncovered(8, &[1, 1, 1, 1, 1, 1, 1, 1]), 4);
        let mut buf = [0u8; 10];
        map.overlay_onto(8, &mut buf);
        assert_eq!(buf, [1, 1, 9, 9, 9, 9, 1, 1, 0, 0]);
    }

    #[test]
    fn interval_map_fully_covered_inserts_nothing() {
        let mut map = IntervalMap::new();
        map.insert_if_uncovered(0, &[5; 16]);
        assert_eq!(map.insert_if_uncovered(4, &[7; 8]), 0);
        assert_eq!(map.len(), 1);
        assert_eq!(map.total_len(), 16);
    }

    #[test]
    fn interval_map_gap_splitting() {
        let mut map = IntervalMap::new();
        map.insert_if_uncovered(10, &[2; 5]);
        map.insert_if_uncovered(20, &[3; 5]);
        // Older data spanning everything fills exactly the three gaps.
        let inserted = map.insert_if_uncovered(5, &[1; 25]);
        assert_eq!(inserted, 15);
        let mut buf = [0u8; 25];
        map.overlay_onto(5, &mut buf);
        let mut expected = [1u8; 25];
        expected[5..10].fill(2);
        expected[15..20].fill(3);
        assert_eq!(buf, expected);
    }

    #[test]
    fn interval_map_preceding_entry_overlap() {
        let mut map = IntervalMap::new();
        map.insert_if_uncovered(0, &[4; 10]);
        // Starts inside the existing entry.
        assert_eq!(map.insert_if_uncovered(5, &[6; 10]), 5);
        let mut buf = [0u8; 15];
        map.overlay_onto(0, &mut buf);
        let mut expected = [4u8; 15];
        expected[10..].fill(6);
        assert_eq!(buf, expected);
    }
}
