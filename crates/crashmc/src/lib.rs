//! # rvm-crashmc — crash-consistency model checking for RVM
//!
//! A deterministic crash-state model checker for the commit and
//! truncation protocols. The pipeline has three stages:
//!
//! 1. **Trace capture** ([`workload`]): a workload runs against a real
//!    [`Rvm`](rvm::Rvm) instance whose log and segment devices are
//!    wrapped in [`TraceDevice`](rvm_storage::TraceDevice)s sharing one
//!    [`TraceRecorder`](rvm_storage::TraceRecorder). The result is a
//!    [`Trace`]: the global order of every `write_at`/`sync`/`set_len`
//!    across all devices, each device's pre-trace durable image, and the
//!    transaction script with *ack points* — the op-log index at which
//!    each flush-mode commit returned to the application.
//!
//! 2. **Crash-image enumeration** ([`enumerate`]): every `sync` boundary
//!    (plus the end of the trace) is a crash point. At a crash point,
//!    writes covered by an earlier completed `sync` on their device are
//!    durable; writes since are *pending*, split into sector-granular
//!    pieces, and any subset of the pieces may have reached the platter —
//!    this is the `ArbitrarySubset` + `TornWrite` disk model, strictly
//!    weaker (more adversarial) than "kept in order". Small piece sets
//!    are enumerated exhaustively; large ones are sampled with seeded
//!    pseudo-randomness plus a deterministic worst-case core (all-kept,
//!    all-dropped, every single-piece drop). Images are deduplicated by
//!    hash, so the reported state count is *distinct reachable crash
//!    states*.
//!
//! 3. **Oracle** ([`oracle`]): each crash image is loaded into fresh
//!    [`MemDevice`](rvm_storage::MemDevice)s and **real recovery** runs
//!    on it (`Rvm::initialize`). The recovered state must satisfy the
//!    committed-prefix invariant:
//!
//!    * single-threaded traces: the recovered segments equal the replay
//!      of some *prefix* of the committed transactions, at least as long
//!      as the acked prefix (every transaction whose commit returned
//!      before the crash point must survive);
//!    * multi-threaded traces (disjoint write cells): each transaction is
//!      all-or-none, acked ⇒ present, aborted ⇒ never present, and
//!      per-thread commit order is prefix-closed;
//!    * the pre-recovery crash image itself passes the
//!      [`rvm_check`] WAL invariant verifier, and recovery is
//!      deterministic (see [`oracle::check_recovery_determinism`]).
//!
//! The checker's acceptance is double-sided: the real tree must show
//! zero violations over every workload, and a tree with a
//! [`MutationHooks`](rvm::MutationHooks) switch flipped (e.g.
//! `skip_group_force`: acknowledge group commits without the batch's log
//! force) must show at least one — proving the checker can see the bug
//! class each switch reintroduces.
//!
//! Traces serialize to disk ([`tracefile`]) so failing cases can be
//! re-checked post mortem: `rvmlog <trace> crashck`.

pub mod enumerate;
pub mod oracle;
pub mod tracefile;
pub mod workload;

use std::collections::{HashMap, HashSet};

use enumerate::{enumerate_images, EnumConfig};
use rvm_storage::TraceOp;

/// A device participating in a trace: identity plus its durable image at
/// the moment recording started (the pre-crash base every enumeration
/// builds on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceBase {
    /// Id assigned by the recorder; [`TraceOp::device`] refers to it.
    pub id: u32,
    /// Segment name, or the log's label.
    pub name: String,
    /// Whether this device is the WAL (exactly one per trace).
    pub is_log: bool,
    /// Durable contents when recording was enabled. Devices first
    /// resolved mid-trace start empty (they are zero-filled at creation;
    /// synthesis grows images on demand).
    pub image: Vec<u8>,
}

/// One byte range a transaction wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegWrite {
    pub segment: String,
    pub offset: u64,
    pub data: Vec<u8>,
}

/// One transaction of the workload script, in per-thread program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpec {
    /// Workload thread that ran the transaction.
    pub thread: u32,
    /// `false` for transactions the workload deliberately aborted.
    pub committed: bool,
    /// Op-log length observed when the commit (or the flush covering a
    /// no-flush commit) returned. A crash at point `c >= ack` must
    /// preserve the transaction; `None` means permanence was never
    /// promised (unflushed or aborted).
    pub ack: Option<usize>,
    pub writes: Vec<SegWrite>,
}

/// A captured execution: devices, global op order, transaction script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    pub devices: Vec<DeviceBase>,
    pub ops: Vec<TraceOp>,
    pub txns: Vec<TxnSpec>,
    /// Single-threaded traces get the exact prefix-replay oracle;
    /// multi-threaded ones the disjoint-cell invariant oracle.
    pub single_threaded: bool,
}

impl Trace {
    /// The log device's base entry.
    pub fn log_base(&self) -> &DeviceBase {
        self.devices
            .iter()
            .find(|d| d.is_log)
            .expect("trace has a log device")
    }

    /// Committed transactions in trace order.
    pub fn committed(&self) -> impl Iterator<Item = &TxnSpec> {
        self.txns.iter().filter(|t| t.committed)
    }
}

/// One invariant breach, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Crash point: `ops[..point]` were issued; the `sync` at `point`
    /// (if any) did not complete.
    pub point: usize,
    /// Which pending pieces the crash image kept.
    pub kept: Vec<bool>,
    /// Seed in effect when the image was generated (sampled points).
    pub seed: u64,
    pub detail: String,
}

/// What a [`check_trace`] run covered and found.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Sync boundaries (plus trace end) considered.
    pub crash_points: usize,
    /// Crash points whose piece set exceeded the exhaustive cap and were
    /// sampled instead.
    pub sampled_points: usize,
    /// Images generated (before dedup).
    pub images_enumerated: u64,
    /// Distinct crash states (deduped by image hash).
    pub images_unique: u64,
    /// Recovery runs executed (deduped by image × required-prefix).
    pub recoveries_run: u64,
    /// True when every crash point was enumerated exhaustively: the
    /// report then covers *every* crash state the disk model permits.
    pub exhaustive: bool,
    pub violations: Vec<Violation>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering (the `rvmlog crashck` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "crash points:      {}{}\n",
            self.crash_points,
            if self.sampled_points > 0 {
                format!(" ({} sampled)", self.sampled_points)
            } else {
                String::new()
            }
        ));
        out.push_str(&format!(
            "crash states:      {} distinct ({} enumerated, {})\n",
            self.images_unique,
            self.images_enumerated,
            if self.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            }
        ));
        out.push_str(&format!("recoveries run:    {}\n", self.recoveries_run));
        out.push_str(&format!("violations:        {}\n", self.violations.len()));
        for v in &self.violations {
            let kept: String = v.kept.iter().map(|&k| if k { '1' } else { '0' }).collect();
            out.push_str(&format!(
                "  @op {} seed {:#x} kept [{}]\n    {}\n",
                v.point, v.seed, kept, v.detail
            ));
        }
        out
    }
}

/// Checks every crash image of `trace` that `cfg` generates, stopping
/// after [`EnumConfig::max_violations`] breaches.
pub fn check_trace(trace: &Trace, cfg: &EnumConfig) -> Report {
    let mut report = Report::default();
    let mut seen: HashSet<(u64, usize)> = HashSet::new();
    let mut violations = Vec::new();

    let stats = enumerate_images(trace, cfg, |point, kept, image_hash, images| {
        // The required prefix depends only on the crash point (acks are
        // monotone in the op-log), so (image, required-count) identifies
        // a recovery problem; equal pairs need only one recovery run.
        let required = trace
            .txns
            .iter()
            .filter(|t| t.ack.is_some_and(|a| a <= point))
            .count();
        if !seen.insert((image_hash, required)) {
            return true;
        }
        report.recoveries_run += 1;
        if let Err(detail) = oracle::check_image(trace, point, images) {
            violations.push(Violation {
                point,
                kept: kept.to_vec(),
                seed: cfg.seed,
                detail,
            });
            if violations.len() >= cfg.max_violations {
                return false;
            }
        }
        true
    });

    report.crash_points = stats.crash_points;
    report.sampled_points = stats.sampled_points;
    report.images_enumerated = stats.images_enumerated;
    report.images_unique = stats.images_unique;
    report.exhaustive = stats.exhaustive;
    report.violations = violations;
    report
}

/// Like [`check_trace`], but bit-rots each crash image before handing it
/// to the oracle: one byte inside an acknowledged committed write's range
/// is flipped on the segment device, and one byte of the checksum
/// sidecar (when present) is flipped too. The committed-prefix oracle
/// then demands that recovery *heal* the rot, and an extra convergence
/// check ([`oracle::check_image_converged`]) demands that the persisted
/// catalogs match the recovered bytes — i.e. an immediate scrub would
/// find nothing left to repair.
///
/// Sound only over workloads that never truncate (e.g.
/// [`workload::Workload::BitRot`]): truncation can retire an acked write
/// from the live log span, after which redo cannot rebuild a rotted byte
/// and the oracle would report a false violation.
pub fn check_trace_with_rot(trace: &Trace, cfg: &EnumConfig) -> Report {
    let mut report = Report::default();
    let mut seen: HashSet<(u64, usize)> = HashSet::new();
    let mut violations = Vec::new();

    let stats = enumerate_images(trace, cfg, |point, kept, image_hash, images| {
        let required = trace
            .txns
            .iter()
            .filter(|t| t.ack.is_some_and(|a| a <= point))
            .count();
        if !seen.insert((image_hash, required)) {
            return true;
        }
        let mut rotted = images.to_vec();
        rot_images(trace, point, cfg.seed, &mut rotted);
        report.recoveries_run += 1;
        if let Err(detail) = oracle::check_image_converged(trace, point, &rotted) {
            violations.push(Violation {
                point,
                kept: kept.to_vec(),
                seed: cfg.seed,
                detail: format!("(with injected rot) {detail}"),
            });
            if violations.len() >= cfg.max_violations {
                return false;
            }
        }
        true
    });

    report.crash_points = stats.crash_points;
    report.sampled_points = stats.sampled_points;
    report.images_enumerated = stats.images_enumerated;
    report.images_unique = stats.images_unique;
    report.exhaustive = stats.exhaustive;
    report.violations = violations;
    report
}

/// Flips one deterministic byte inside an acked committed write's range
/// on its segment's image, plus one byte of every checksum sidecar. No-op
/// when no transaction is acked at `point` (nothing is guaranteed
/// recoverable yet, so arbitrary rot could be legal data loss).
fn rot_images(trace: &Trace, point: usize, seed: u64, images: &mut [(u32, Vec<u8>)]) {
    let acked: Vec<&TxnSpec> = trace
        .txns
        .iter()
        .filter(|t| t.committed && t.ack.is_some_and(|a| a <= point))
        .collect();
    // No acked transaction yet ⇒ the recovery tree may be empty, in
    // which case recovery never touches the segments or their catalogs
    // and injected rot would legally persist until the next map. Only
    // crash points with committed work make the healing claim testable.
    if acked.is_empty() {
        return;
    }
    let mut rng = seed ^ (point as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let txn = acked[(xorshift64(&mut rng) % acked.len() as u64) as usize];
    let write = &txn.writes[(xorshift64(&mut rng) % txn.writes.len() as u64) as usize];
    if !write.data.is_empty() {
        let byte = write.offset + xorshift64(&mut rng) % write.data.len() as u64;
        let dev = trace
            .devices
            .iter()
            .find(|d| !d.is_log && d.name == write.segment)
            .map(|d| d.id);
        if let Some(id) = dev {
            if let Some((_, img)) = images.iter_mut().find(|(i, _)| *i == id) {
                ensure_len(img, byte, 1);
                img[byte as usize] ^= 0xA5;
            }
        }
    }
    // Rot the catalog sidecar of every segment the acked work wrote —
    // recovery is guaranteed to open those catalogs while applying the
    // tree, and must not trust one that fails its own self-check: it
    // re-adopts a fresh catalog instead.
    let rotted_sidecars: HashSet<String> = acked
        .iter()
        .flat_map(|t| t.writes.iter())
        .map(|w| rvm::scrub::sidecar_name(&w.segment))
        .collect();
    for dev in trace
        .devices
        .iter()
        .filter(|d| !d.is_log && rotted_sidecars.contains(&d.name))
    {
        if let Some((_, img)) = images.iter_mut().find(|(i, _)| *i == dev.id) {
            if !img.is_empty() {
                let byte = (xorshift64(&mut rng) % img.len() as u64) as usize;
                img[byte] ^= 0xA5;
            }
        }
    }
}

/// Grows `img` with zeros so `offset + len` is in bounds.
pub(crate) fn ensure_len(img: &mut Vec<u8>, offset: u64, len: usize) {
    let end = offset as usize + len;
    if img.len() < end {
        img.resize(end, 0);
    }
}

/// Applies a write to a growable image.
pub(crate) fn apply_write(img: &mut Vec<u8>, offset: u64, data: &[u8]) {
    ensure_len(img, offset, data.len());
    img[offset as usize..offset as usize + data.len()].copy_from_slice(data);
}

/// The base images of every non-log device, by name.
pub(crate) fn segment_bases(trace: &Trace) -> HashMap<String, Vec<u8>> {
    trace
        .devices
        .iter()
        .filter(|d| !d.is_log)
        .map(|d| (d.name.clone(), d.image.clone()))
        .collect()
}

/// xorshift64* — the crate's only randomness, fully determined by the
/// seed (same generator as the storage fault layer).
pub(crate) fn xorshift64(state: &mut u64) -> u64 {
    if *state == 0 {
        *state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_write_grows_and_overwrites() {
        let mut img = vec![1, 2, 3];
        apply_write(&mut img, 2, &[9, 9]);
        assert_eq!(img, vec![1, 2, 9, 9]);
        apply_write(&mut img, 6, &[5]);
        assert_eq!(img, vec![1, 2, 9, 9, 0, 0, 5]);
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = 42;
        let mut b = 42;
        for _ in 0..16 {
            let x = xorshift64(&mut a);
            assert_eq!(x, xorshift64(&mut b));
            assert_ne!(x, 0);
        }
        let mut z = 0;
        assert_ne!(xorshift64(&mut z), 0, "zero seed is remapped");
    }
}
