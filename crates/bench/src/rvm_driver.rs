//! TPC-A driver running the *real* RVM library over simulated devices.
//!
//! The library's own I/O (log forces, truncation writes to the external
//! data segment) flows through `simdisk` devices and is charged
//! automatically. Two things the library cannot charge are modelled
//! around it:
//!
//! * **CPU path lengths** — 1993 instruction budgets per operation, from
//!   [`RvmCostModel`];
//! * **paging** — region memory is plain VM backed by a separate paging
//!   disk (§3.2); every record access touches the corresponding page of a
//!   [`SimVm`] space sized to the machine's available frames.

use std::sync::Arc;

use rvm::segment::DeviceResolver;
use rvm::{CommitMode, Options, Region, RegionDescriptor, Rvm, StatsSnapshot, Tuning, TxnMode};
use rvm_storage::{MemDevice, NullDevice};
use simclock::{Clock, SimTime};
use simdisk::SimDisk;
use simvm::{SimVm, SpaceId, VmParams, VM_PAGE_SIZE};
use tpca::{TpcaLayout, TpcaTxn};

use crate::model::{LogConfig, Machine, RvmCostModel};
use crate::tpca_run::TpcaSystem;

/// Data bytes logged per TPC-A transaction (account + teller + branch +
/// audit record).
pub const LOGGED_BYTES_PER_TXN: u64 = 128 + 128 + 128 + 64;

/// The RVM system under test.
pub struct RvmTpca {
    clock: Clock,
    rvm: Rvm,
    region: Region,
    layout: TpcaLayout,
    vm: SimVm,
    space: SpaceId,
    model: RvmCostModel,
    last_stats: StatsSnapshot,
    counter: u64,
}

impl RvmTpca {
    /// Builds the system: log, data and paging disks, the RVM instance,
    /// one mapped region holding the whole benchmark layout, and the VM
    /// model.
    pub fn new(machine: &Machine, model: RvmCostModel, log_cfg: &LogConfig, accounts: u64) -> Self {
        let clock = Clock::new();
        let layout = TpcaLayout::new(accounts);

        let log_disk: Arc<dyn rvm_storage::Device> = Arc::new(SimDisk::new(
            Arc::new(MemDevice::with_len(log_cfg.device_bytes)),
            clock.clone(),
            machine.disk.clone(),
        ));
        let data_disk: Arc<dyn rvm_storage::Device> = Arc::new(SimDisk::new(
            Arc::new(NullDevice::new(layout.total_len())),
            clock.clone(),
            machine.disk.clone(),
        ));
        let paging_disk: Arc<dyn rvm_storage::Device> = Arc::new(SimDisk::new(
            Arc::new(NullDevice::new(layout.total_len() + VM_PAGE_SIZE)),
            clock.clone(),
            machine.disk.clone(),
        ));

        let data_for_resolver = data_disk.clone();
        let resolver: DeviceResolver = Arc::new(move |_name, min_len| {
            if data_for_resolver.len()? < min_len {
                data_for_resolver.set_len(min_len)?;
            }
            Ok(data_for_resolver.clone())
        });
        let tuning = Tuning {
            truncation_threshold: log_cfg.threshold,
            // The resolver aliases every name onto one data disk;
            // checksum sidecars are off so catalog writes cannot land
            // on it.
            segment_checksums: false,
            ..Tuning::default()
        };
        let rvm = Rvm::initialize(
            Options::new(log_disk)
                .resolver(resolver)
                .tuning(tuning)
                .create_if_empty(),
        )
        .expect("initialize RVM over simulated devices");
        let region = rvm
            .map(&RegionDescriptor::new("tpca", 0, layout.total_len()))
            .expect("map the benchmark region");

        let mut vm = SimVm::new(
            clock.clone(),
            (machine.rvm_avail_bytes / VM_PAGE_SIZE) as usize,
            VmParams {
                fault_service_cpu: model.cpu_fault,
                hit_cpu: SimTime::ZERO,
                evict_cpu: SimTime::from_micros(50),
                pageout_cluster: 8,
            },
        );
        let space = vm.add_space(paging_disk, 0, layout.total_len() / VM_PAGE_SIZE);
        let last_stats = rvm.stats();
        Self {
            clock,
            rvm,
            region,
            layout,
            vm,
            space,
            model,
            last_stats,
            counter: 0,
        }
    }

    fn touch(&mut self, offset: u64, len: u64) {
        let first = offset / VM_PAGE_SIZE;
        let last = (offset + len - 1) / VM_PAGE_SIZE;
        for page in first..=last {
            self.vm.touch(self.space, page, true);
        }
    }

    /// Paging statistics of the run.
    pub fn vm_stats(&self) -> simvm::VmStats {
        self.vm.stats()
    }

    /// The underlying RVM statistics.
    pub fn rvm_stats(&self) -> StatsSnapshot {
        self.rvm.stats()
    }
}

impl TpcaSystem for RvmTpca {
    fn warm_up(&mut self) {
        // Reach paging steady state before the measurement window: touch
        // every page once, dirty (oldest pages end up evicted if the
        // region exceeds the frame pool, and at steady state resident
        // recoverable pages are dirty — the double-paging cost of §3.2).
        for page in 0..self.layout.total_len() / VM_PAGE_SIZE {
            self.vm.touch(self.space, page, true);
        }
    }

    fn run_txn(&mut self, t: &TpcaTxn) {
        self.counter += 1;
        let l = self.layout;
        let account_off = l.account_offset(t.account);
        let teller_off = l.teller_offset(t.teller);
        let branch_off = l.branch_offset();
        let audit_off = l.audit_slot_offset(t.audit_slot);

        // Model the VM traffic of the four record accesses.
        self.touch(account_off, 128);
        self.touch(teller_off, 128);
        self.touch(branch_off, 128);
        self.touch(audit_off, 64);

        // The real transaction.
        let mut rec = [0u8; 128];
        rec[..8].copy_from_slice(&self.counter.to_le_bytes());
        let mut txn = self.rvm.begin_transaction(TxnMode::Restore).expect("begin");
        self.region
            .write(&mut txn, account_off, &rec)
            .expect("account");
        self.region
            .write(&mut txn, teller_off, &rec)
            .expect("teller");
        self.region
            .write(&mut txn, branch_off, &rec)
            .expect("branch");
        self.region
            .write(&mut txn, audit_off, &rec[..64])
            .expect("audit");
        txn.commit(CommitMode::Flush).expect("commit");

        // Charge the modelled CPU path.
        self.clock
            .charge_cpu(self.model.base_txn_cpu(LOGGED_BYTES_PER_TXN));

        // Charge truncation CPU when the library truncated.
        let stats = self.rvm.stats();
        let delta = stats.delta_since(&self.last_stats);
        self.last_stats = stats;
        if delta.epoch_truncations > 0 {
            self.clock.charge_cpu(
                SimTime::from_nanos(
                    self.model.cpu_trunc_per_scanned_byte_ns * delta.truncation_bytes_scanned,
                ) + self.model.cpu_trunc_per_range * delta.truncation_ranges_applied,
            );
        }
    }

    fn clock(&self) -> &Clock {
        &self.clock
    }
}
