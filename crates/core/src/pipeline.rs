//! The pipelined double-buffered log writer: shared state for the
//! reserve/fill/submit protocol (`Tuning::log_pipeline`).
//!
//! The serial group-commit leader appends its batch and then *waits* for
//! the force — device time during which the next batch's serialization
//! could already be running. The pipeline removes that wait: a leader
//! reserves log space with the WAL cursors, fills one of two staging
//! buffers with the encoded records, submits the writes and the force
//! asynchronously ([`Device::submit_write`](rvm_storage::Device) /
//! `submit_sync`), and hands the batch to this module as an
//! [`InFlightBatch`]. The *next* leader fills the other buffer while the
//! first force is still in flight; completions are harvested ("reaped")
//! strictly FIFO, and only the reap — which waits the batch's tokens —
//! acknowledges its committers. Durability semantics are unchanged; only
//! serialization and device time overlap.
//!
//! ## Buffer states and who may rotate
//!
//! A staging buffer is always in exactly one state:
//!
//! * **free** — in [`PipeState::free`], available to the next leader;
//! * **filling** — owned by the active leader (leadership is exclusive,
//!   so at most one buffer is filling);
//! * **in flight** — attached to an [`InFlightBatch`] whose writes and
//!   force have been submitted but not waited;
//! * **reaping** — popped from the queue by the thread that currently
//!   owns the reap (marked by [`PipeState::reap_floor`]).
//!
//! Rotation is the reap: any thread may reap, but reaps are serialized
//! and FIFO — the front batch is popped under the pipeline lock together
//! with setting `reap_floor`, and no other thread may pop until the
//! reaper settles. In practice the reaper is the *successor* leader
//! (after submitting its own batch, so the fill overlapped the
//! predecessor's force), a leader that found the commit queue empty (the
//! pipeline tail), or a leader waiting for a free buffer.
//!
//! ## Failure and poison rules
//!
//! A batch whose writes or force fail at reap fails *whole*: the WAL
//! cursors are rolled back iff nothing appended past the batch (its
//! `end_tail` still matches the WAL tail and no core-lock release
//! intervened), and the instance is poisoned — records may sit
//! unacknowledged in the device's write-behind cache, exactly the serial
//! group-commit rule. Batches submitted *after* a failed one fail with
//! `Poisoned` even if their own force succeeded: their records sit beyond
//! an unforced hole, where a recovery scan cannot reach them.
//!
//! ## The floor
//!
//! Truncation must never treat in-flight records as stable: the oldest
//! unreaped batch's pre-append checkpoint is the **pipeline floor**
//! ([`LogPipeline::floor`]), and every truncation path caps its work
//! below it. Everything under the floor is fully written *and forced*
//! (reaps are FIFO; serial appends force under the core lock).
//!
//! Lock order: the pipeline lock (`pipe`) ranks above `core` and the
//! group-commit `work` slots — it may be taken while they are held
//! (publishing a submitted batch under `core`; floor reads inside
//! truncation, reached from `append_with_space` where the serial leader
//! still holds `work`), and is **never** held while acquiring either.
//! Its condvar parks on `pipe` alone.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rvm_storage::{Device, IoToken};

use crate::error::Result;
use crate::group::GroupSlot;
use crate::log::wal::{AppendInfo, StagingBuf, WalCheckpoint};

/// One batch whose writes and force have been submitted to the device
/// but not yet waited. Created by the pipelined leader under the core
/// lock; consumed by the (FIFO) reap.
pub(crate) struct InFlightBatch {
    /// The batch members, queue order.
    pub(crate) slots: Vec<Arc<GroupSlot>>,
    /// Per-member outcome as of the submit: `Ok` pending durability, or
    /// the member's own `LogFull`.
    pub(crate) outcomes: Vec<Result<AppendInfo>>,
    /// Submitted staging-chunk writes, submission order.
    pub(crate) write_tokens: Vec<IoToken>,
    /// The submitted force covering them (`None` only under the
    /// `skip_group_force` crashmc mutation).
    pub(crate) force_token: Option<IoToken>,
    /// The log device, captured so the reap can wait without the core
    /// lock.
    pub(crate) dev: Arc<dyn Device>,
    /// WAL cursors before this batch's appends — the rollback point and,
    /// while this batch is the oldest in flight, the pipeline floor.
    pub(crate) ckpt: WalCheckpoint,
    /// `Core::wait_generation` at the checkpoint.
    pub(crate) ckpt_gen: u64,
    /// WAL tail right after this batch's appends; a reap-time failure
    /// rolls back only if the tail still matches.
    pub(crate) end_tail: u64,
    /// The (drained) staging buffer, returned to the free list on settle.
    pub(crate) buf: StagingBuf,
}

/// State behind the pipeline lock.
pub(crate) struct PipeState {
    /// Staging buffers not owned by a filling leader or an in-flight
    /// batch. Two at rest: double buffering.
    pub(crate) free: Vec<StagingBuf>,
    /// Submitted batches awaiting their reap, oldest first.
    pub(crate) in_flight: VecDeque<InFlightBatch>,
    /// Checkpoint of the batch currently being reaped (popped but not
    /// settled). Doubles as the "a reap is in progress" flag that keeps
    /// reaps FIFO, and keeps the floor visible while the front batch is
    /// out of the queue.
    pub(crate) reap_floor: Option<WalCheckpoint>,
}

/// The pipeline lock and its condvar (signalled whenever a buffer frees
/// or a reap settles).
pub(crate) struct LogPipeline {
    pub(crate) pipe: Mutex<PipeState>,
    pub(crate) pipe_cv: Condvar,
}

impl LogPipeline {
    pub(crate) fn new() -> Self {
        LogPipeline {
            pipe: Mutex::new(PipeState {
                free: vec![StagingBuf::new(), StagingBuf::new()],
                in_flight: VecDeque::new(),
                reap_floor: None,
            }),
            pipe_cv: Condvar::new(),
        }
    }

    /// The pipeline floor: the oldest unreaped batch's pre-append
    /// checkpoint. Everything below it is fully written and forced;
    /// nothing at or above it may be treated as stable by truncation.
    /// `None` when no batch is in flight or mid-reap.
    pub(crate) fn floor(&self) -> Option<WalCheckpoint> {
        let ps = self.pipe.lock();
        // A mid-reap batch is older than anything still queued (FIFO).
        ps.reap_floor
            .or_else(|| ps.in_flight.front().map(|b| b.ckpt))
    }

    /// Whether nothing is in flight and no reap is in progress.
    pub(crate) fn is_idle(&self) -> bool {
        let ps = self.pipe.lock();
        ps.reap_floor.is_none() && ps.in_flight.is_empty()
    }
}
