//! WAL invariant verification for RVM logs.
//!
//! `rvmlog doctor` answers "where does the live log end, and what
//! terminated it?" — it walks the forward scan and classifies the first
//! breakage. This crate asks a stronger question: *does the log image
//! satisfy every structural invariant the format promises?* Several
//! corruptions pass doctor untouched because the forward scan never looks
//! at them:
//!
//! * **Reverse-displacement canonicality.** A record's padded extent ends
//!   with the Figure-5 trailer; between the CRC-covered body and the
//!   trailer lies zero padding that *no* checksum covers. The forward
//!   scan never reads it for meaning — but the backward scan's
//!   displacement arithmetic lives in that trailing block, and the format
//!   writes it as zeros. Non-zero bytes there are silent corruption.
//! * **Bidirectional symmetry.** Scanning tail→head via reverse
//!   displacements must visit exactly the records the forward scan found
//!   (§5.1.2 reads the log tail to head; recovery depends on it).
//! * **Status-copy agreement.** The dual-copy status block (Figure 6)
//!   alternates writes; two decodable copies must carry adjacent
//!   sequence numbers and identical geometry, and neither may promise a
//!   tail or sequence number beyond what the record area holds.
//! * **Recovery algebra.** The newest-wins tree built from the records
//!   must be idempotent (applying it twice yields the same image) and
//!   equal to oldest-first sequential replay — the two formulations of
//!   §5.1.2's recovery that must agree for truncation to be safe.
//!
//! [`verify`] runs all of it read-only and reports findings; the `rvmlog
//! verify` subcommand wraps it.

use std::collections::HashMap;
use std::sync::Arc;

use rvm::log::record::{parse_header, RecordKind, HEADER_SIZE, LOG_BLOCK, TRAILER_SIZE};
use rvm::log::status::{
    read_status, StatusBlock, LOG_AREA_START, STATUS_A_OFFSET, STATUS_BLOCK_SIZE, STATUS_B_OFFSET,
};
use rvm::log::wal::{scan_backward, scan_forward};
use rvm::ranges::IntervalMap;
use rvm::Result;
use rvm_storage::Device;

/// What [`verify`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Record-area length.
    pub area_len: u64,
    /// Logical head of the live log.
    pub head: u64,
    /// Tail the forward scan reached.
    pub tail: u64,
    /// Live committed transaction records.
    pub live_records: usize,
    /// Pad records.
    pub pads: u64,
    /// Invariant checks that ran (for the report).
    pub checks_run: Vec<String>,
    /// Invariant violations; empty means the log verifies clean.
    pub findings: Vec<String>,
}

impl VerifyReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report, as `rvmlog verify` prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "log: area {} bytes, head {}, tail {}, {} live record(s), {} pad(s)\n",
            self.area_len, self.head, self.tail, self.live_records, self.pads
        ));
        for check in &self.checks_run {
            out.push_str(&format!("checked: {check}\n"));
        }
        if self.findings.is_empty() {
            out.push_str("all invariants hold\n");
        } else {
            for f in &self.findings {
                out.push_str(&format!("VIOLATION: {f}\n"));
            }
        }
        out
    }
}

/// Verifies every WAL structural invariant over `dev`, read-only.
///
/// Device read errors and an unreadable status block abort with `Err`;
/// everything else — however damaged — lands as findings in the report.
pub fn verify(dev: &Arc<dyn Device>) -> Result<VerifyReport> {
    let status = read_status(dev.as_ref())?;
    let mut findings = Vec::new();
    let mut checks_run = Vec::new();

    check_status_copies(dev.as_ref(), &mut findings)?;
    checks_run.push("status-copy agreement and geometry".to_owned());

    let scan = scan_forward(
        dev.as_ref(),
        status.area_len,
        status.head,
        status.seq_at_head,
        None,
    )?;

    // The status block is a hint that may lag the true tail (records are
    // forced before status updates) but must never lead it: a status
    // promising more log than the scan can read means committed data is
    // gone.
    if status.tail > scan.tail {
        findings.push(format!(
            "status block records tail {} but the forward scan ends at {}",
            status.tail, scan.tail
        ));
    }
    if status.next_seq > scan.next_seq {
        findings.push(format!(
            "status block promises sequence numbers up to {} but the log holds only up to {}",
            status.next_seq, scan.next_seq
        ));
    }
    checks_run.push("status hints never lead the scanned log".to_owned());

    check_record_extents(dev.as_ref(), &status, scan.tail, &mut findings)?;
    checks_run.push("reverse-displacement blocks are canonical (zero padding)".to_owned());

    match scan_backward(
        dev.as_ref(),
        status.area_len,
        status.head,
        scan.tail,
        scan.next_seq,
    ) {
        Ok(mut backward) => {
            backward.reverse();
            if backward != scan.records {
                findings.push(format!(
                    "bidirectional asymmetry: forward scan yields {} record(s), \
                     reverse scan yields {} and they differ",
                    scan.records.len(),
                    backward.len()
                ));
            }
        }
        Err(e) => {
            findings.push(format!(
                "bidirectional asymmetry: reverse scan fails over the forward-scanned area: {e}"
            ));
        }
    }
    checks_run.push("forward/backward scan symmetry (Figure 5 displacements)".to_owned());

    check_recovery_algebra(&scan.records, &mut findings);
    checks_run.push("tree-apply idempotence and replay equivalence".to_owned());

    Ok(VerifyReport {
        area_len: status.area_len,
        head: status.head,
        tail: scan.tail,
        live_records: scan.records.len(),
        pads: scan.pads,
        checks_run,
        findings,
    })
}

/// Dual-copy status agreement (Figure 6): decodable copies must carry
/// adjacent write sequence numbers and identical geometry, and each
/// copy's cursors must be self-consistent and block-aligned.
fn check_status_copies(dev: &dyn Device, findings: &mut Vec<String>) -> Result<()> {
    let mut copies: [Option<StatusBlock>; 2] = [None, None];
    for (i, off) in [STATUS_A_OFFSET, STATUS_B_OFFSET].iter().enumerate() {
        let mut buf = vec![0u8; STATUS_BLOCK_SIZE as usize];
        dev.read_at(*off, &mut buf)?;
        copies[i] = StatusBlock::decode(&buf);
    }
    for (i, copy) in copies.iter().enumerate() {
        let Some(s) = copy else {
            findings.push(format!("status copy {} does not decode", ['A', 'B'][i]));
            continue;
        };
        let name = ['A', 'B'][i];
        if s.area_len == 0 || s.area_len % LOG_BLOCK != 0 {
            findings.push(format!(
                "status copy {name}: record area of {} bytes is not a positive \
                 multiple of the {LOG_BLOCK}-byte log block",
                s.area_len
            ));
        }
        if s.head % LOG_BLOCK != 0 || s.tail % LOG_BLOCK != 0 {
            findings.push(format!(
                "status copy {name}: head {} / tail {} are not block-aligned",
                s.head, s.tail
            ));
        }
        if s.tail < s.head || s.tail - s.head > s.area_len {
            findings.push(format!(
                "status copy {name}: cursors head {} / tail {} do not describe \
                 a live extent within an area of {} bytes",
                s.head, s.tail, s.area_len
            ));
        }
        if s.next_seq < s.seq_at_head {
            findings.push(format!(
                "status copy {name}: next_seq {} precedes seq_at_head {}",
                s.next_seq, s.seq_at_head
            ));
        }
        // The write sequence parity selects the copy (even → A, odd → B);
        // a copy carrying the wrong parity was written to the wrong slot.
        if s.seq % 2 != i as u64 {
            findings.push(format!(
                "status copy {name}: write sequence {} has the wrong parity for this slot",
                s.seq
            ));
        }
    }
    if let [Some(a), Some(b)] = &copies {
        if a.area_len != b.area_len {
            findings.push(format!(
                "status copies disagree on the record-area length: A says {}, B says {}",
                a.area_len, b.area_len
            ));
        }
        if a.seq.abs_diff(b.seq) != 1 {
            findings.push(format!(
                "status copies carry non-adjacent write sequences {} and {}: \
                 alternation (Figure 6) was violated",
                a.seq, b.seq
            ));
        }
    }
    Ok(())
}

/// Walks every live record extent and verifies the bytes between the
/// CRC-covered body and the trailer are zero, as the encoder writes them.
///
/// This padding is the one part of a record no checksum covers — the
/// forward scan never reads it for meaning, so `doctor` cannot see
/// corruption here — yet the trailing block it sits in is exactly where
/// the backward scan's displacement arithmetic lives.
fn check_record_extents(
    dev: &dyn Device,
    status: &StatusBlock,
    tail: u64,
    findings: &mut Vec<String>,
) -> Result<()> {
    let mut pos = status.head;
    while pos < tail {
        let mut header_buf = [0u8; HEADER_SIZE as usize];
        dev.read_at(LOG_AREA_START + pos % status.area_len, &mut header_buf)?;
        let Some(header) = parse_header(&header_buf) else {
            // The forward scan already bounded `tail`; anything unreadable
            // past it is not ours to judge here.
            break;
        };
        let padded = header.padded_len();
        if header.kind == RecordKind::Txn {
            let mut buf = vec![0u8; padded as usize];
            dev.read_at(LOG_AREA_START + pos % status.area_len, &mut buf)?;
            let body_len = (HEADER_SIZE + header.payload_len as u64) as usize;
            let trailer_at = (padded - TRAILER_SIZE) as usize;
            if let Some(nonzero) = buf[body_len..trailer_at].iter().position(|&b| b != 0) {
                findings.push(format!(
                    "record at offset {} (seq {}): non-zero byte in the unchecksummed \
                     padding at extent offset {} — the reverse-displacement block is \
                     not canonical",
                    pos,
                    header.seq,
                    body_len + nonzero
                ));
            }
        }
        pos += padded;
    }
    Ok(())
}

/// Rebuilds §5.1.2's recovery trees from the live records and verifies
/// the algebra truncation relies on: tree application is idempotent, and
/// newest-wins tree-apply equals oldest-first sequential replay.
fn check_recovery_algebra(
    records: &[(u64, rvm::log::record::TxnRecord)],
    findings: &mut Vec<String>,
) {
    let mut trees: HashMap<u32, IntervalMap> = HashMap::new();
    let mut extents: HashMap<u32, u64> = HashMap::new();
    for (_, record) in records.iter().rev() {
        for range in &record.ranges {
            trees
                .entry(range.seg.as_u32())
                .or_default()
                .insert_if_uncovered(range.offset, &range.data);
            let end = range.offset + range.data.len() as u64;
            let e = extents.entry(range.seg.as_u32()).or_default();
            *e = (*e).max(end);
        }
    }
    for (seg, tree) in &trees {
        let len = extents[seg] as usize;
        let mut once = vec![0u8; len];
        tree.overlay_onto(0, &mut once);
        let mut twice = once.clone();
        tree.overlay_onto(0, &mut twice);
        if once != twice {
            findings.push(format!(
                "segment {seg}: applying the recovery tree twice changes the image — \
                 recovery would not be idempotent"
            ));
        }
        let mut sequential = vec![0u8; len];
        for (_, record) in records {
            for range in &record.ranges {
                if range.seg.as_u32() == *seg {
                    let at = range.offset as usize;
                    sequential[at..at + range.data.len()].copy_from_slice(&range.data);
                }
            }
        }
        if once != sequential {
            findings.push(format!(
                "segment {seg}: newest-wins tree apply and oldest-first replay \
                 disagree — the recovery tree drops or misorders data"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm::segment::MemResolver;
    use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
    use rvm_storage::MemDevice;

    fn world(txns: u8) -> Arc<MemDevice> {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let rvm = Rvm::initialize(
            Options::new(log.clone())
                .resolver(MemResolver::new().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        for i in 0..txns {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.write(&mut txn, 64 * i as u64, &[i + 1; 16]).unwrap();
            region.write(&mut txn, 2048, &[i; 8]).unwrap();
            txn.commit(CommitMode::Flush).unwrap();
        }
        std::mem::forget(rvm);
        log
    }

    fn as_dyn(log: &Arc<MemDevice>) -> Arc<dyn Device> {
        log.clone()
    }

    #[test]
    fn clean_log_verifies_clean() {
        let log = world(5);
        let report = verify(&as_dyn(&log)).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.live_records, 5);
        assert!(report.checks_run.len() >= 5);
        assert!(report.render().contains("all invariants hold"));
    }

    #[test]
    fn empty_log_verifies_clean() {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        Rvm::create_log(log.as_ref()).unwrap();
        let report = verify(&as_dyn(&log)).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.live_records, 0);
    }

    #[test]
    fn corrupt_reverse_displacement_padding_is_flagged() {
        let log = world(3);
        let status = read_status(log.as_ref()).unwrap();
        let scan = scan_forward(log.as_ref(), status.area_len, status.head, 1, None).unwrap();
        // Second record: poke a byte into the zero padding between the
        // CRC-covered body and the trailer. Both CRCs still verify.
        let (pos, _) = scan.records[1];
        let mut header_buf = [0u8; HEADER_SIZE as usize];
        log.read_at(LOG_AREA_START + pos, &mut header_buf).unwrap();
        let header = parse_header(&header_buf).unwrap();
        let body_end = pos + HEADER_SIZE + header.payload_len as u64;
        let trailer_at = pos + header.padded_len() - TRAILER_SIZE;
        assert!(trailer_at > body_end, "record must have padding to corrupt");
        log.write_at(LOG_AREA_START + body_end, &[0xDE]).unwrap();

        let report = verify(&as_dyn(&log)).unwrap();
        assert!(!report.is_clean());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.contains("reverse-displacement block")),
            "{:?}",
            report.findings
        );
        assert!(report.render().contains("VIOLATION"));
    }

    #[test]
    fn status_copy_disagreement_is_flagged() {
        let log = world(2);
        // Re-encode copy A with a far-ahead write sequence of the wrong
        // parity: both copies still decode, but alternation is broken.
        let mut buf = vec![0u8; STATUS_BLOCK_SIZE as usize];
        log.read_at(STATUS_A_OFFSET, &mut buf).unwrap();
        let mut a = StatusBlock::decode(&buf).unwrap();
        a.seq += 5;
        log.write_at(STATUS_A_OFFSET, &a.encode()).unwrap();

        let report = verify(&as_dyn(&log)).unwrap();
        assert!(!report.is_clean());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.contains("non-adjacent write sequences")),
            "{:?}",
            report.findings
        );
        assert!(
            report.findings.iter().any(|f| f.contains("wrong parity")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn status_tail_leading_the_log_is_flagged() {
        let log = world(2);
        // The on-disk status lags the true tail (records are forced before
        // status updates), which is legal. Forge one that *leads* the
        // scanned tail instead, in the slot `read_status` will pick.
        let status = read_status(log.as_ref()).unwrap();
        let scan = scan_forward(
            log.as_ref(),
            status.area_len,
            status.head,
            status.seq_at_head,
            None,
        )
        .unwrap();
        let off = if status.seq.is_multiple_of(2) {
            STATUS_A_OFFSET
        } else {
            STATUS_B_OFFSET
        };
        let mut forged = status.clone();
        forged.tail = scan.tail + LOG_BLOCK;
        forged.next_seq = scan.next_seq + 1;
        log.write_at(off, &forged.encode()).unwrap();

        let report = verify(&as_dyn(&log)).unwrap();
        assert!(!report.is_clean());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.contains("forward scan ends at")),
            "{:?}",
            report.findings
        );
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.contains("promises sequence numbers")),
            "{:?}",
            report.findings
        );
    }
}
