//! The shared benchmark loop and the Table 1 sweep.

use camelot_sim::CamelotParams;
use simclock::Clock;
use tpca::{AccessPattern, TpcaLayout, TpcaTxn, TpcaWorkload};

use crate::camelot_driver::CamelotTpca;
use crate::model::{LogConfig, Machine, RvmCostModel};
use crate::rvm_driver::RvmTpca;

/// A system that can execute TPC-A transactions on the virtual clock.
pub trait TpcaSystem {
    /// Brings the system to paging steady state (excluded from the
    /// measurement window, like the paper's startup).
    fn warm_up(&mut self);
    /// Executes one transaction, charging all costs to the clock.
    fn run_txn(&mut self, txn: &TpcaTxn);
    /// The virtual clock all costs land on.
    fn clock(&self) -> &Clock;
}

/// Which system a cell of Table 1 measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// This library.
    Rvm,
    /// The Camelot model.
    Camelot,
}

impl SystemKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Rvm => "RVM",
            SystemKind::Camelot => "Camelot",
        }
    }
}

/// One trial's measurements.
#[derive(Debug, Clone, Copy)]
pub struct TrialResult {
    /// Steady-state throughput, transactions per second.
    pub tps: f64,
    /// Amortized CPU per transaction, milliseconds (Figure 9's metric).
    pub cpu_ms_per_txn: f64,
}

/// Mean and standard deviation over trials (the paper reports mean and
/// σ of the three most consistent of five to eight trials; we run
/// exactly `trials` deterministic seeds).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Per-trial results.
    pub trials: Vec<TrialResult>,
}

impl CellResult {
    /// Mean throughput.
    pub fn mean_tps(&self) -> f64 {
        mean(self.trials.iter().map(|t| t.tps))
    }

    /// Standard deviation of throughput.
    pub fn sd_tps(&self) -> f64 {
        sd(self.trials.iter().map(|t| t.tps))
    }

    /// Mean CPU ms/transaction.
    pub fn mean_cpu(&self) -> f64 {
        mean(self.trials.iter().map(|t| t.cpu_ms_per_txn))
    }

    /// Standard deviation of CPU ms/transaction.
    pub fn sd_cpu(&self) -> f64 {
        sd(self.trials.iter().map(|t| t.cpu_ms_per_txn))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn sd(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    let m = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Transactions per trial (the measurement window).
    pub txns_per_trial: u64,
    /// Trials per cell.
    pub trials: u32,
    /// The machine.
    pub machine: Machine,
    /// RVM CPU model.
    pub rvm_model: RvmCostModel,
    /// RVM log sizing.
    pub log: LogConfig,
    /// Camelot parameters.
    pub camelot: CamelotParams,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            txns_per_trial: 40_000,
            trials: 3,
            machine: Machine::default(),
            rvm_model: RvmCostModel::default(),
            log: LogConfig::default(),
            camelot: CamelotParams::default(),
        }
    }
}

/// Runs one trial and returns its measurements.
pub fn run_trial(
    system: &mut dyn TpcaSystem,
    layout: TpcaLayout,
    pattern: AccessPattern,
    txns: u64,
    seed: u64,
) -> TrialResult {
    let mut workload = TpcaWorkload::new(layout, pattern, seed);
    system.warm_up();
    // A short ramp so the first measured transaction is not special.
    for _ in 0..200 {
        let t = workload.next_txn();
        system.run_txn(&t);
    }
    let before = system.clock().snapshot();
    for _ in 0..txns {
        let t = workload.next_txn();
        system.run_txn(&t);
    }
    let delta = system.clock().snapshot() - before;
    TrialResult {
        tps: txns as f64 / delta.total.as_secs_f64(),
        cpu_ms_per_txn: delta.cpu.as_millis_f64() * 1000.0 / txns as f64 / 1000.0,
    }
}

/// Runs all trials of one (system, size, pattern) cell.
pub fn run_cell(
    kind: SystemKind,
    accounts: u64,
    pattern: AccessPattern,
    cfg: &SweepConfig,
) -> CellResult {
    let layout = TpcaLayout::new(accounts);
    let trials = (0..cfg.trials)
        .map(|trial| {
            let seed = 0xC0DA + trial as u64 * 7919 + accounts;
            match kind {
                SystemKind::Rvm => {
                    let mut sys =
                        RvmTpca::new(&cfg.machine, cfg.rvm_model.clone(), &cfg.log, accounts);
                    run_trial(&mut sys, layout, pattern, cfg.txns_per_trial, seed)
                }
                SystemKind::Camelot => {
                    let mut sys = CamelotTpca::new(&cfg.machine, cfg.camelot.clone(), accounts);
                    run_trial(&mut sys, layout, pattern, cfg.txns_per_trial, seed)
                }
            }
        })
        .collect();
    CellResult { trials }
}
