//! Media-failure resilience by mirroring (the layer *below* RVM in the
//! paper's Figure 2).
//!
//! §3.1: "Our final simplification was to factor out resiliency to media
//! failure. Standard techniques such as mirroring can be used to achieve
//! such resiliency. Our expectation is that this functionality will most
//! likely be implemented in the device driver of a mirrored disk."
//!
//! [`MirrorDevice`] is that device driver: writes go to every replica and
//! reads are served by the first replica that still answers. Failure
//! handling distinguishes three severities:
//!
//! * **Transient errors** are retried a bounded number of times. A read
//!   that keeps failing transiently is *skipped* — served from another
//!   replica, with the flaky one left in service; a write that keeps
//!   failing transiently drops the replica (skipping a write would let
//!   the copies silently diverge).
//! * **Hard errors** drop the replica from service. A dropped replica can
//!   be brought back with [`MirrorDevice::readmit_replica`], which
//!   resilvers it from a healthy copy first.
//! * **Silent corruption** is invisible here — the mirror holds no
//!   checksums — but [`Device::read_verified`] lets a caller supply one:
//!   the mirror then tries each replica until a copy verifies and
//!   *read-repairs* the losers in place.
//!
//! RVM stacks on top unchanged — exactly the layering the paper
//! prescribes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::{Device, DeviceError, Result, VerifiedRead};

/// How many times a transiently-failing replica operation is retried
/// before the mirror gives up on it (skips the read or drops the
/// replica for a write).
const TRANSIENT_RETRIES: usize = 3;

/// Resilver copy granularity.
const RESILVER_CHUNK: usize = 1 << 16;

struct Replica {
    dev: Arc<dyn Device>,
    alive: AtomicBool,
}

/// Runs `f`, retrying bounded times while it fails transiently.
fn with_retry<T>(mut f: impl FnMut() -> Result<T>) -> Result<T> {
    let mut last = None;
    for _ in 0..=TRANSIENT_RETRIES {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("retry loop runs at least once"))
}

fn all_failed() -> DeviceError {
    DeviceError::Io(std::io::Error::other("all mirror replicas have failed"))
}

/// A device mirrored over two or more replicas.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rvm_storage::{Device, MemDevice, MirrorDevice};
///
/// let a = Arc::new(MemDevice::with_len(1024));
/// let b = Arc::new(MemDevice::with_len(1024));
/// let mirror = MirrorDevice::new(vec![a.clone(), b.clone()]).unwrap();
/// mirror.write_at(0, b"both").unwrap();
/// let mut buf = [0u8; 4];
/// b.read_at(0, &mut buf).unwrap();
/// assert_eq!(&buf, b"both");
/// ```
pub struct MirrorDevice {
    replicas: Vec<Replica>,
    /// Replica pages rewritten from a verified copy by `read_verified`.
    read_repairs: AtomicU64,
}

impl MirrorDevice {
    /// Builds a mirror over the replicas, which must all have the same
    /// length.
    pub fn new(devices: Vec<Arc<dyn Device>>) -> Result<MirrorDevice> {
        if devices.is_empty() {
            return Err(DeviceError::Io(std::io::Error::other(
                "a mirror needs at least one replica",
            )));
        }
        let len = devices[0].len()?;
        for dev in &devices[1..] {
            if dev.len()? != len {
                return Err(DeviceError::Io(std::io::Error::other(
                    "mirror replicas must have equal lengths",
                )));
            }
        }
        Ok(MirrorDevice {
            replicas: devices
                .into_iter()
                .map(|dev| Replica {
                    dev,
                    alive: AtomicBool::new(true),
                })
                .collect(),
            read_repairs: AtomicU64::new(0),
        })
    }

    /// Number of replicas still in service.
    pub fn alive_replicas(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.alive.load(Ordering::Acquire))
            .count()
    }

    /// Total number of replicas, in service or not.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Replica pages rewritten from a verified copy by
    /// [`Device::read_verified`] read-repair.
    pub fn read_repairs(&self) -> u64 {
        self.read_repairs.load(Ordering::Relaxed)
    }

    /// Marks a replica as failed (for tests and administrative action);
    /// it will no longer be read from or written to.
    pub fn fail_replica(&self, index: usize) {
        if let Some(r) = self.replicas.get(index) {
            r.alive.store(false, Ordering::Release);
        }
    }

    /// Brings a dropped replica back into service after *resilvering* it:
    /// the replica is sized to match and its full contents copied from
    /// the surviving copies, then synced, before it is marked alive.
    ///
    /// The caller must quiesce writes to the mirror for the duration —
    /// RVM's truncation paths already serialize segment writes, so the
    /// natural place to call this is between truncation epochs.
    pub fn readmit_replica(&self, index: usize) -> Result<()> {
        let target = self
            .replicas
            .get(index)
            .ok_or_else(|| DeviceError::Io(std::io::Error::other("no such replica")))?;
        if target.alive.load(Ordering::Acquire) {
            return Ok(());
        }
        let len = self.len()?;
        target.dev.set_len(len)?;
        let mut buf = vec![0u8; RESILVER_CHUNK.min(len.max(1) as usize)];
        let mut off = 0u64;
        while off < len {
            let n = ((len - off) as usize).min(RESILVER_CHUNK);
            self.read_at(off, &mut buf[..n])?;
            target.dev.write_at(off, &buf[..n])?;
            off += n as u64;
        }
        target.dev.sync()?;
        target.alive.store(true, Ordering::Release);
        Ok(())
    }

    /// Runs a mutation on every alive replica. Transient failures are
    /// retried; a replica whose *write-side* operation still fails is
    /// dropped (skipping it would silently diverge the copies), but it
    /// remains eligible for [`MirrorDevice::readmit_replica`].
    fn for_each_alive(&self, mut f: impl FnMut(&Arc<dyn Device>) -> Result<()>) -> Result<()> {
        let mut any = false;
        for replica in &self.replicas {
            if !replica.alive.load(Ordering::Acquire) {
                continue;
            }
            match with_retry(|| f(&replica.dev)) {
                Ok(()) => any = true,
                Err(DeviceError::OutOfBounds {
                    offset,
                    len,
                    device_len,
                }) => {
                    // Bounds errors are deterministic, not media failures.
                    return Err(DeviceError::OutOfBounds {
                        offset,
                        len,
                        device_len,
                    });
                }
                Err(_) => replica.alive.store(false, Ordering::Release),
            }
        }
        if any {
            Ok(())
        } else {
            Err(all_failed())
        }
    }

    /// Runs a read-side operation against replicas in order until one
    /// answers. Transient failures are retried and then *skipped* — the
    /// replica stays alive, since an unanswered read diverges nothing;
    /// hard failures drop the replica.
    fn first_alive<T>(&self, mut f: impl FnMut(&Arc<dyn Device>) -> Result<T>) -> Result<T> {
        for replica in &self.replicas {
            if !replica.alive.load(Ordering::Acquire) {
                continue;
            }
            match with_retry(|| f(&replica.dev)) {
                Ok(v) => return Ok(v),
                Err(DeviceError::OutOfBounds {
                    offset,
                    len,
                    device_len,
                }) => {
                    return Err(DeviceError::OutOfBounds {
                        offset,
                        len,
                        device_len,
                    })
                }
                Err(e) if e.is_transient() => continue,
                Err(_) => replica.alive.store(false, Ordering::Release),
            }
        }
        Err(all_failed())
    }
}

impl Device for MirrorDevice {
    fn len(&self) -> Result<u64> {
        self.first_alive(|dev| dev.len())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.first_alive(|dev| dev.read_at(offset, buf))
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.for_each_alive(|dev| dev.write_at(offset, data))
    }

    fn sync(&self) -> Result<()> {
        self.for_each_alive(|dev| dev.sync())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.for_each_alive(|dev| dev.set_len(len))
    }

    /// Tries each alive replica until a copy passes `verify`; replicas
    /// that answered with non-verifying bytes are then rewritten from the
    /// verified copy (read-repair). Replicas that could not be read are
    /// handled as in `read_at` (transient → skip, hard → drop) and are
    /// *not* repaired — their bytes were never seen.
    fn read_verified(
        &self,
        offset: u64,
        buf: &mut [u8],
        verify: &(dyn Fn(&[u8]) -> bool + Sync),
    ) -> Result<VerifiedRead> {
        let mut losers: Vec<usize> = Vec::new();
        let mut any_read = false;
        for (i, replica) in self.replicas.iter().enumerate() {
            if !replica.alive.load(Ordering::Acquire) {
                continue;
            }
            match with_retry(|| replica.dev.read_at(offset, buf)) {
                Ok(()) => {
                    any_read = true;
                    if verify(buf) {
                        let mut repaired = false;
                        for &j in &losers {
                            let loser = &self.replicas[j];
                            match with_retry(|| loser.dev.write_at(offset, buf)) {
                                Ok(()) => {
                                    repaired = true;
                                    self.read_repairs.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => loser.alive.store(false, Ordering::Release),
                            }
                        }
                        return Ok(if repaired {
                            VerifiedRead::Repaired
                        } else {
                            VerifiedRead::Clean
                        });
                    }
                    losers.push(i);
                }
                Err(DeviceError::OutOfBounds {
                    offset,
                    len,
                    device_len,
                }) => {
                    return Err(DeviceError::OutOfBounds {
                        offset,
                        len,
                        device_len,
                    })
                }
                Err(e) if e.is_transient() => continue,
                Err(_) => replica.alive.store(false, Ordering::Release),
            }
        }
        if any_read {
            // Every copy we could read failed verification; `buf` holds
            // the last (unverified) bytes for best-effort salvage.
            Ok(VerifiedRead::Corrupt)
        } else {
            Err(all_failed())
        }
    }

    fn replica_health(&self) -> Option<(usize, usize)> {
        Some((self.alive_replicas(), self.replica_count()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CrashPlan, FaultClock, FaultDevice, FaultOp, FlakyDevice, FlakyFault, MemDevice};

    fn two_way() -> (MirrorDevice, Arc<MemDevice>, Arc<MemDevice>) {
        let a = Arc::new(MemDevice::with_len(1024));
        let b = Arc::new(MemDevice::with_len(1024));
        let m = MirrorDevice::new(vec![a.clone(), b.clone()]).unwrap();
        (m, a, b)
    }

    #[test]
    fn writes_reach_every_replica() {
        let (m, a, b) = two_way();
        m.write_at(10, b"mirrored").unwrap();
        m.sync().unwrap();
        let mut buf = [0u8; 8];
        a.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"mirrored");
        b.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"mirrored");
    }

    #[test]
    fn reads_survive_a_replica_failure() {
        let (m, _a, _b) = two_way();
        m.write_at(0, b"safe").unwrap();
        m.fail_replica(0);
        assert_eq!(m.alive_replicas(), 1);
        let mut buf = [0u8; 4];
        m.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"safe");
        // Writes keep going to the survivor.
        m.write_at(8, b"more").unwrap();
        assert_eq!(m.alive_replicas(), 1);
    }

    #[test]
    fn failing_replica_is_dropped_automatically() {
        let a: Arc<dyn Device> = Arc::new(FaultDevice::new(
            Arc::new(MemDevice::with_len(1024)),
            CrashPlan::torn_at(8),
        ));
        let b = Arc::new(MemDevice::with_len(1024));
        let m = MirrorDevice::new(vec![a, b.clone()]).unwrap();
        m.write_at(0, &[1; 8]).unwrap(); // replica 0 crashes here
        assert_eq!(m.alive_replicas(), 1);
        m.write_at(8, &[2; 8]).unwrap();
        let mut buf = [0u8; 8];
        b.read_at(8, &mut buf).unwrap();
        assert_eq!(buf, [2; 8]);
    }

    #[test]
    fn all_replicas_failed_is_an_error() {
        let (m, _a, _b) = two_way();
        m.fail_replica(0);
        m.fail_replica(1);
        assert!(m.write_at(0, &[1]).is_err());
        assert!(m.read_at(0, &mut [0]).is_err());
        assert!(m.len().is_err());
    }

    #[test]
    fn bounds_errors_are_not_media_failures() {
        let (m, _a, _b) = two_way();
        assert!(matches!(
            m.write_at(2000, &[1]),
            Err(DeviceError::OutOfBounds { .. })
        ));
        assert_eq!(m.alive_replicas(), 2, "no replica dropped");
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let a: Arc<dyn Device> = Arc::new(MemDevice::with_len(1024));
        let b: Arc<dyn Device> = Arc::new(MemDevice::with_len(2048));
        assert!(MirrorDevice::new(vec![a, b]).is_err());
        assert!(MirrorDevice::new(vec![]).is_err());
    }

    #[test]
    fn transient_write_failure_is_retried_not_dropped() {
        // One transient write fault: the in-place retry absorbs it.
        let flaky: Arc<dyn Device> = Arc::new(FlakyDevice::new(
            Arc::new(MemDevice::with_len(1024)),
            vec![FlakyFault::transient(FaultOp::Write, 1)],
        ));
        let b = Arc::new(MemDevice::with_len(1024));
        let m = MirrorDevice::new(vec![flaky, b.clone()]).unwrap();
        m.write_at(0, b"kept").unwrap();
        assert_eq!(m.alive_replicas(), 2, "transient write must not drop");
    }

    #[test]
    fn transient_read_failure_skips_without_dropping() {
        // A long transient run on reads outlasts the retries; the read is
        // served by the other replica and the flaky one stays alive.
        let flaky: Arc<dyn Device> = Arc::new(FlakyDevice::new(
            Arc::new(MemDevice::with_len(1024)),
            vec![FlakyFault::transient_run(FaultOp::Read, 1, 100)],
        ));
        let b = Arc::new(MemDevice::with_len(1024));
        let m = MirrorDevice::new(vec![flaky, b.clone()]).unwrap();
        m.write_at(0, b"served").unwrap();
        let mut buf = [0u8; 6];
        m.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"served");
        assert_eq!(m.alive_replicas(), 2, "transient reads must not drop");
    }

    #[test]
    fn persistent_transient_write_failure_drops_replica() {
        // A transient run longer than the retry budget on the write path:
        // the replica is dropped (a skipped write would diverge copies).
        let flaky: Arc<dyn Device> = Arc::new(FlakyDevice::new(
            Arc::new(MemDevice::with_len(1024)),
            vec![FlakyFault::transient_run(FaultOp::Write, 1, 100)],
        ));
        let b = Arc::new(MemDevice::with_len(1024));
        let m = MirrorDevice::new(vec![flaky, b.clone()]).unwrap();
        m.write_at(0, b"x").unwrap();
        assert_eq!(m.alive_replicas(), 1);
    }

    #[test]
    fn readmit_resilvers_from_survivor() {
        let (m, a, _b) = two_way();
        m.write_at(0, b"before").unwrap();
        m.fail_replica(0);
        m.write_at(6, b" after").unwrap(); // replica 0 misses this
        m.readmit_replica(0).unwrap();
        assert_eq!(m.alive_replicas(), 2);
        let mut buf = [0u8; 12];
        a.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"before after", "resilver copied the delta");
    }

    #[test]
    fn read_verified_repairs_the_losing_replica() {
        let (m, a, b) = two_way();
        m.write_at(0, &[7u8; 16]).unwrap();
        a.write_at(3, &[0xFF]).unwrap(); // corrupt replica 0 behind the mirror's back
        let want = [7u8; 16];
        let mut buf = [0u8; 16];
        let outcome = m.read_verified(0, &mut buf, &|data| data == want).unwrap();
        assert_eq!(outcome, VerifiedRead::Repaired);
        assert_eq!(buf, want);
        assert_eq!(m.read_repairs(), 1);
        // The loser was rewritten in place.
        a.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, want);
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, want);
        // A second verified read is clean.
        let outcome = m.read_verified(0, &mut buf, &|data| data == want).unwrap();
        assert_eq!(outcome, VerifiedRead::Clean);
    }

    #[test]
    fn read_verified_reports_unrecoverable_corruption() {
        let (m, a, b) = two_way();
        m.write_at(0, &[7u8; 16]).unwrap();
        a.write_at(3, &[0xFF]).unwrap();
        b.write_at(5, &[0xFE]).unwrap();
        let want = [7u8; 16];
        let mut buf = [0u8; 16];
        let outcome = m.read_verified(0, &mut buf, &|data| data == want).unwrap();
        assert_eq!(outcome, VerifiedRead::Corrupt);
        assert!(!outcome.is_verified());
        assert_eq!(m.alive_replicas(), 2, "corruption is not a drop");
    }

    #[test]
    fn read_verified_with_seeded_rot_storm_heals() {
        // Both replicas rot independently (separate clocks): with a
        // checksum on top the mirror must serve only verified bytes.
        let want = [0x42u8; 64];
        let mk = |seed| -> Arc<dyn Device> {
            let clock = FaultClock::seeded_with_rot(seed, 0, 150);
            Arc::new(FlakyDevice::with_clock(
                Arc::new(MemDevice::with_len(1024)),
                clock,
            ))
        };
        let m = MirrorDevice::new(vec![mk(1), mk(2)]).unwrap();
        // Writes themselves may rot; retry the whole write until both
        // replicas verify, so the test starts from a known-good image.
        loop {
            m.write_at(0, &want).unwrap();
            let mut buf = [0u8; 64];
            if m.read_verified(0, &mut buf, &|d| d == want).unwrap() == VerifiedRead::Clean {
                break;
            }
        }
        let mut healed = 0u32;
        for _ in 0..200 {
            let mut buf = [0u8; 64];
            let outcome = m.read_verified(0, &mut buf, &|d| d == want).unwrap();
            // A rotted read is detected and never surfaces bad bytes...
            if outcome.is_verified() {
                assert_eq!(buf, want);
            }
            if outcome == VerifiedRead::Repaired {
                healed += 1;
            }
        }
        assert!(healed > 0, "a 15% rot storm over 200 reads must repair");
        assert_eq!(m.alive_replicas(), 2);
    }

    #[test]
    fn replica_health_is_reported() {
        let (m, _a, _b) = two_way();
        assert_eq!(m.replica_health(), Some((2, 2)));
        m.fail_replica(1);
        assert_eq!(m.replica_health(), Some((1, 2)));
    }
}
