//! The four analysis passes and their shared token-walking helpers.

pub mod fallibility;
pub mod lockorder;
pub mod panics;
pub mod unlogged;

use std::collections::HashMap;

use crate::items::FileModel;
use crate::lexer::{Kind, Tok};

/// Maps every `{` token index to its matching `}` (and vice versa).
pub fn brace_match(toks: &[Tok]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                map.insert(open, i);
                map.insert(i, open);
            }
        }
    }
    map
}

/// Finds the matching `)` for the `(` at `open`.
pub fn paren_match(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len() - 1
}

/// The receiver chain of a method call: for `self.shared.core.lock()`
/// with `dot` at the `.` before `lock`, returns `["self","shared","core"]`.
/// A chain that starts after a `)` / `]` (e.g. `foo().bar.lock()`) is
/// returned as the trailing ident segments only — suffix matching makes
/// this safe.
pub fn receiver_chain(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == Kind::Ident {
            chain.push(prev.text.clone());
            if j >= 3 && toks[j - 2].is_punct('.') && toks[j - 3].kind == Kind::Ident {
                j -= 2;
                continue;
            }
        }
        break;
    }
    chain.reverse();
    chain
}

/// `true` if `pattern` (the field path of `field.method`, already split)
/// is a suffix of `chain`.
pub fn chain_matches(chain: &[String], pattern_fields: &[&str]) -> bool {
    if pattern_fields.is_empty() || chain.len() < pattern_fields.len() {
        return false;
    }
    chain
        .iter()
        .rev()
        .zip(pattern_fields.iter().rev())
        .all(|(c, p)| c == p)
}

/// Method names too generic to resolve by bare name when building the
/// call graph: resolving `x.len()` to some local `fn len` would wire the
/// graph to the wrong function far more often than the right one.
pub const CALL_DENYLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "hash",
    "from",
    "into",
    "try_from",
    "try_into",
    "as_ref",
    "as_mut",
    "deref",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "set",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "iter",
    "iter_mut",
    "next",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "min",
    "max",
    "clamp",
    "take",
    "replace",
    "swap",
    "read",
    "write",
    "lock",
    "load",
    "store",
    "open",
    "close",
    "run",
    "start",
    "stop",
    "wait",
    "send",
    "recv",
    "begin",
    "end",
    "init",
    "extend",
    "clear",
    "split",
    "join",
    "name",
    "id",
    "kind",
    "value",
    "index",
    "flush",
    "render",
    "parse",
    "encode",
    "decode",
    "to_string",
    "to_vec",
    "to_owned",
    "as_str",
    "as_bytes",
    "as_slice",
    "abort",
    "commit",
    "apply",
    "update",
    "reset",
    "check",
    "verify",
];

/// A name-indexed call graph over a set of files, with transitive
/// closure support. Calls are resolved by bare name, only when that
/// name maps to exactly one non-test function across the file set and
/// is not on [`CALL_DENYLIST`] — a deliberately conservative
/// over-approximation tuned for precision.
pub struct CallGraph {
    /// Function key `file|qual` -> direct callee keys.
    pub calls: HashMap<String, Vec<String>>,
}

/// Key for a function in the graph.
pub fn fn_key(file: &str, qual: &str) -> String {
    format!("{file}|{qual}")
}

impl CallGraph {
    /// Builds the graph. `name_table` maps bare name -> unique fn key
    /// (names with multiple non-test definitions are dropped).
    pub fn build(files: &[&FileModel]) -> (CallGraph, HashMap<String, String>) {
        let mut name_table: HashMap<String, Option<String>> = HashMap::new();
        for fm in files {
            for f in fm.fns.iter().filter(|f| !f.is_test) {
                let key = fn_key(&fm.path, &f.qual);
                name_table
                    .entry(f.name.clone())
                    .and_modify(|e| *e = None)
                    .or_insert(Some(key));
            }
        }
        let resolved: HashMap<String, String> = name_table
            .into_iter()
            .filter(|(name, v)| v.is_some() && !CALL_DENYLIST.contains(&name.as_str()))
            .map(|(name, v)| (name, v.unwrap()))
            .collect();

        let mut calls: HashMap<String, Vec<String>> = HashMap::new();
        for fm in files {
            for f in fm.fns.iter().filter(|f| !f.is_test) {
                let Some((open, close)) = f.body else {
                    continue;
                };
                let key = fn_key(&fm.path, &f.qual);
                let entry = calls.entry(key).or_default();
                for site in call_sites(&fm.lexed.toks, open, close) {
                    if let Some(callee) = resolved.get(&fm.lexed.toks[site].text) {
                        if !entry.contains(callee) {
                            entry.push(callee.clone());
                        }
                    }
                }
            }
        }
        (CallGraph { calls }, resolved)
    }

    /// Keys reachable from `from` (inclusive).
    pub fn reachable(&self, from: &str) -> Vec<String> {
        let mut seen = vec![from.to_string()];
        let mut work = vec![from.to_string()];
        while let Some(k) = work.pop() {
            for callee in self.calls.get(&k).into_iter().flatten() {
                if !seen.contains(callee) {
                    seen.push(callee.clone());
                    work.push(callee.clone());
                }
            }
        }
        seen
    }
}

/// Argument regions of `spawn(...)` calls within `(open, close)`: code
/// inside them executes on a *different* thread, so nothing there is
/// "done while holding" the spawning function's locks, and its panics
/// kill the new thread rather than unwinding into the caller. Both the
/// lock-order walk and the call graph skip these regions.
pub fn spawn_regions(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in open + 1..close {
        let t = &toks[i];
        if t.kind == Kind::Ident
            && t.text == "spawn"
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            out.push((i + 1, paren_match(toks, i + 1)));
        }
    }
    out
}

/// `true` if `i` falls inside any of `regions`.
pub fn in_regions(regions: &[(usize, usize)], i: usize) -> bool {
    regions.iter().any(|&(a, b)| i > a && i < b)
}

/// Token indices of call-site name idents within `(open, close)`:
/// `name(`, `.name(`, `path::name(` — excluding definitions (`fn name(`),
/// macros (`name!(`), and [`spawn_regions`].
pub fn call_sites(toks: &[Tok], open: usize, close: usize) -> Vec<usize> {
    let spawns = spawn_regions(toks, open, close);
    let mut out = Vec::new();
    for i in open + 1..close {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        if in_regions(&spawns, i) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('#')) {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "if" | "while"
                | "match"
                | "for"
                | "return"
                | "loop"
                | "move"
                | "box"
                | "in"
                | "as"
                | "let"
                | "else"
                | "unsafe"
                | "Some"
                | "Ok"
                | "Err"
                | "None"
        ) {
            continue;
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileModel;

    #[test]
    fn receiver_chains() {
        let m = FileModel::build("x.rs", "fn f() { self.shared.core.lock(); }", false);
        let toks = &m.lexed.toks;
        let dot = toks
            .iter()
            .enumerate()
            .find(|(i, t)| t.is_punct('.') && toks[i + 1].is_ident("lock"))
            .unwrap()
            .0;
        assert_eq!(receiver_chain(toks, dot), ["self", "shared", "core"]);
        assert!(chain_matches(&receiver_chain(toks, dot), &["core"]));
        assert!(!chain_matches(&receiver_chain(toks, dot), &["check"]));
    }

    #[test]
    fn call_graph_unique_resolution_and_closure() {
        let a = FileModel::build(
            "a.rs",
            "fn top() { helper_one(); } fn helper_one() { helper_two(); } fn helper_two() {}",
            false,
        );
        let files = vec![&a];
        let (g, resolved) = CallGraph::build(&files);
        assert!(resolved.contains_key("helper_two"));
        let r = g.reachable(&fn_key("a.rs", "top"));
        assert!(r.contains(&fn_key("a.rs", "helper_two")));
    }

    #[test]
    fn denylisted_names_do_not_resolve() {
        let a = FileModel::build("a.rs", "fn len() {} fn f() { x.len(); }", false);
        let files = vec![&a];
        let (_, resolved) = CallGraph::build(&files);
        assert!(!resolved.contains_key("len"));
    }
}
