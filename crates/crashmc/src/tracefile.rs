//! Trace (de)serialization: a small self-describing little-endian binary
//! format, so failing crash traces can be saved and re-checked post
//! mortem (`rvmlog <trace> crashck`) without any external dependency.

use std::io::{self, Read, Write};
use std::path::Path;

use rvm_storage::{TraceOp, TraceOpKind};

use crate::{DeviceBase, SegWrite, Trace, TxnSpec};

const MAGIC: &[u8; 8] = b"RVMCMC01";

impl Trace {
    /// Serializes the trace.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, self.devices.len() as u32);
        for d in &self.devices {
            put_u32(&mut out, d.id);
            put_str(&mut out, &d.name);
            out.push(d.is_log as u8);
            put_bytes(&mut out, &d.image);
        }
        put_u64(&mut out, self.ops.len() as u64);
        for op in &self.ops {
            put_u32(&mut out, op.device);
            match &op.kind {
                TraceOpKind::Write { offset, data } => {
                    out.push(0);
                    put_u64(&mut out, *offset);
                    put_bytes(&mut out, data);
                }
                TraceOpKind::Sync => out.push(1),
                TraceOpKind::SetLen { len } => {
                    out.push(2);
                    put_u64(&mut out, *len);
                }
            }
        }
        put_u32(&mut out, self.txns.len() as u32);
        for t in &self.txns {
            put_u32(&mut out, t.thread);
            out.push(t.committed as u8);
            match t.ack {
                Some(a) => {
                    out.push(1);
                    put_u64(&mut out, a as u64);
                }
                None => out.push(0),
            }
            put_u32(&mut out, t.writes.len() as u32);
            for w in &t.writes {
                put_str(&mut out, &w.segment);
                put_u64(&mut out, w.offset);
                put_bytes(&mut out, &w.data);
            }
        }
        out.push(self.single_threaded as u8);
        out
    }

    /// Parses a trace serialized by [`Trace::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Trace> {
        let mut r = bytes;
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not an rvm-crashmc trace (bad magic)"));
        }
        let ndev = get_u32(&mut r)?;
        let mut devices = Vec::with_capacity(ndev as usize);
        for _ in 0..ndev {
            devices.push(DeviceBase {
                id: get_u32(&mut r)?,
                name: get_str(&mut r)?,
                is_log: get_u8(&mut r)? != 0,
                image: get_bytes(&mut r)?,
            });
        }
        let nops = get_u64(&mut r)?;
        let mut ops = Vec::with_capacity(nops as usize);
        for _ in 0..nops {
            let device = get_u32(&mut r)?;
            let kind = match get_u8(&mut r)? {
                0 => TraceOpKind::Write {
                    offset: get_u64(&mut r)?,
                    data: get_bytes(&mut r)?,
                },
                1 => TraceOpKind::Sync,
                2 => TraceOpKind::SetLen {
                    len: get_u64(&mut r)?,
                },
                t => return Err(bad(&format!("unknown op tag {t}"))),
            };
            ops.push(TraceOp { device, kind });
        }
        let ntxn = get_u32(&mut r)?;
        let mut txns = Vec::with_capacity(ntxn as usize);
        for _ in 0..ntxn {
            let thread = get_u32(&mut r)?;
            let committed = get_u8(&mut r)? != 0;
            let ack = if get_u8(&mut r)? != 0 {
                Some(get_u64(&mut r)? as usize)
            } else {
                None
            };
            let nw = get_u32(&mut r)?;
            let mut writes = Vec::with_capacity(nw as usize);
            for _ in 0..nw {
                writes.push(SegWrite {
                    segment: get_str(&mut r)?,
                    offset: get_u64(&mut r)?,
                    data: get_bytes(&mut r)?,
                });
            }
            txns.push(TxnSpec {
                thread,
                committed,
                ack,
                writes,
            });
        }
        let single_threaded = get_u8(&mut r)? != 0;
        if !r.is_empty() {
            return Err(bad("trailing bytes after trace"));
        }
        Ok(Trace {
            devices,
            ops,
            txns,
            single_threaded,
        })
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()
    }

    /// Reads a trace written by [`Trace::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Trace> {
        Trace::from_bytes(&std::fs::read(path)?)
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn get_u8(r: &mut &[u8]) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn get_u32(r: &mut &[u8]) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut &[u8]) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_bytes(r: &mut &[u8]) -> io::Result<Vec<u8>> {
    let len = get_u64(r)? as usize;
    if len > r.len() {
        return Err(bad("length prefix past end of input"));
    }
    let (head, tail) = r.split_at(len);
    let out = head.to_vec();
    *r = tail;
    Ok(out)
}

fn get_str(r: &mut &[u8]) -> io::Result<String> {
    String::from_utf8(get_bytes(r)?).map_err(|_| bad("non-UTF-8 string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            devices: vec![
                DeviceBase {
                    id: 0,
                    name: "log".into(),
                    is_log: true,
                    image: vec![1, 2, 3],
                },
                DeviceBase {
                    id: 1,
                    name: "cells".into(),
                    is_log: false,
                    image: vec![],
                },
            ],
            ops: vec![
                TraceOp {
                    device: 0,
                    kind: TraceOpKind::Write {
                        offset: 7,
                        data: vec![9; 5],
                    },
                },
                TraceOp {
                    device: 0,
                    kind: TraceOpKind::Sync,
                },
                TraceOp {
                    device: 1,
                    kind: TraceOpKind::SetLen { len: 4096 },
                },
            ],
            txns: vec![TxnSpec {
                thread: 2,
                committed: true,
                ack: Some(2),
                writes: vec![SegWrite {
                    segment: "cells".into(),
                    offset: 64,
                    data: vec![0xAB; 8],
                }],
            }],
            single_threaded: false,
        }
    }

    #[test]
    fn round_trips() {
        let t = sample();
        let bytes = t.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(Trace::from_bytes(b"not a trace").is_err());
        let bytes = sample().to_bytes();
        assert!(Trace::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Trace::from_bytes(&extra).is_err());
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join(format!("crashmc-tf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rvmtrace");
        let t = sample();
        t.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), t);
        std::fs::remove_dir_all(&dir).ok();
    }
}
