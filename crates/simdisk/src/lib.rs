//! A latency-modelled simulated disk.
//!
//! The paper's evaluation machine (a DECstation 5000/200, §7.1) had three
//! dedicated disks — log, external data segment, and paging file — and its
//! throughput numbers are largely arithmetic over their latencies: the
//! average log force cost 17.4 ms, bounding throughput at 57.4 txn/s
//! (§7.1.2). [`SimDisk`] reproduces that arithmetic deterministically.
//!
//! # Model
//!
//! A disk has a head position, a seek curve, rotational latency, a transfer
//! rate, and a write-behind cache:
//!
//! * **reads** are serviced immediately: seek (distance-dependent) + half a
//!   rotation on average + transfer time;
//! * **writes** land in the cache (transfer time only);
//! * **sync** flushes the cache: contiguous dirty extents are coalesced and
//!   each extent costs a seek + rotational latency + transfer. This makes a
//!   small log force cost one seek + rotation (≈ 17 ms on the default
//!   parameters) regardless of how many `write_at` calls composed the
//!   record — exactly the behaviour the paper's log relies on.
//!
//! All costs are charged to the I/O account of a shared [`simclock::Clock`],
//! never to wall-clock time, so experiments are fast and deterministic.

use std::sync::Arc;

use parking_lot::Mutex;
use rvm_storage::{Device, Result};
use simclock::{Clock, SimTime};

mod params;
mod stats;

pub use params::DiskParams;
pub use stats::DiskStats;

#[derive(Debug)]
struct DiskState {
    /// Current head position in bytes (block-granular positions are not
    /// needed for latency shape).
    head: u64,
    /// Dirty extents in the write-behind cache, kept sorted and coalesced.
    pending: Vec<(u64, u64)>,
    /// Extent currently held by the read-ahead buffer.
    readahead: (u64, u64),
    stats: DiskStats,
}

/// A simulated disk: wraps any inner [`Device`] (usually a
/// [`rvm_storage::MemDevice`]) and charges modelled latency to a virtual
/// clock on every access.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rvm_storage::{Device, MemDevice};
/// use simclock::Clock;
/// use simdisk::{DiskParams, SimDisk};
///
/// let clock = Clock::new();
/// let disk = SimDisk::new(
///     Arc::new(MemDevice::with_len(1 << 20)),
///     clock.clone(),
///     DiskParams::circa_1990(),
/// );
/// disk.write_at(0, &[0u8; 256]).unwrap();
/// disk.sync().unwrap(); // a log force
/// let ms = clock.io_time().as_millis_f64();
/// assert!((15.0..20.0).contains(&ms), "log force cost {ms} ms");
/// ```
pub struct SimDisk {
    inner: Arc<dyn Device>,
    clock: Clock,
    params: DiskParams,
    state: Mutex<DiskState>,
}

impl SimDisk {
    /// Creates a simulated disk over `inner`, charging latency to `clock`.
    pub fn new(inner: Arc<dyn Device>, clock: Clock, params: DiskParams) -> Self {
        Self {
            inner,
            clock,
            params,
            state: Mutex::new(DiskState {
                head: 0,
                pending: Vec::new(),
                readahead: (0, 0),
                stats: DiskStats::default(),
            }),
        }
    }

    /// Returns a copy of the cumulative operation statistics.
    pub fn stats(&self) -> DiskStats {
        self.state.lock().stats.clone()
    }

    /// Returns the disk parameter set in use.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Returns the clock this disk charges.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Cost of a positioned access: seek from the current head to `offset`
    /// plus average rotational delay, then `len` bytes of transfer.
    ///
    /// With `in_batch` set (a non-first extent of a batched flush), a
    /// nearby extent pays only the discounted rotational wait: the
    /// elevator ordering and the track buffer let the controller write
    /// sectors as they come around instead of waiting half a revolution
    /// per extent.
    fn access_cost(&self, state: &mut DiskState, offset: u64, len: u64, in_batch: bool) -> SimTime {
        let capacity = self.params.capacity_bytes;
        let distance = state.head.abs_diff(offset);
        let seek = self.params.seek_time(distance, capacity);
        if !seek.is_zero() {
            state.stats.seeks += 1;
        }
        let rotation = if in_batch && distance < self.params.near_extent_threshold {
            SimTime::from_nanos(
                (self.params.rotational_latency().as_nanos() as f64
                    * self.params.near_extent_rotation_factor) as u64,
            )
        } else {
            self.params.rotational_latency()
        };
        let cost = seek + rotation + self.params.transfer_time(len);
        state.head = offset + len;
        cost
    }

    /// Inserts `[offset, offset + len)` into the pending extent list,
    /// coalescing overlapping or adjacent extents.
    fn add_pending(pending: &mut Vec<(u64, u64)>, offset: u64, len: u64) {
        let (mut start, mut end) = (offset, offset + len);
        pending.retain(|&(s, e)| {
            if s <= end && e >= start {
                start = start.min(s);
                end = end.max(e);
                false
            } else {
                true
            }
        });
        let idx = pending.partition_point(|&(s, _)| s < start);
        pending.insert(idx, (start, end));
    }
}

impl Device for SimDisk {
    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)?;
        let mut state = self.state.lock();
        let len = buf.len() as u64;
        let (ra_start, ra_end) = state.readahead;
        let cost = if offset >= ra_start && offset + len <= ra_end {
            // Served from the drive's read-ahead buffer: streaming. The
            // window *slides* to the current stream position (it must not
            // simply grow, or it would eventually cover the whole disk).
            state.readahead = (offset, offset + len + self.params.readahead_bytes);
            state.head = offset + len;
            self.params.transfer_time(len)
        } else {
            state.readahead = (offset, offset + len + self.params.readahead_bytes);
            self.access_cost(&mut state, offset, len, false)
        };
        state.stats.reads += 1;
        state.stats.bytes_read += buf.len() as u64;
        drop(state);
        self.clock.charge_io(cost);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.inner.write_at(offset, data)?;
        let mut state = self.state.lock();
        Self::add_pending(&mut state.pending, offset, data.len() as u64);
        state.stats.writes += 1;
        state.stats.bytes_written += data.len() as u64;
        drop(state);
        // Into the write-behind cache: transfer over the bus only.
        self.clock
            .charge_io(self.params.transfer_time(data.len() as u64));
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()?;
        let mut state = self.state.lock();
        let pending = std::mem::take(&mut state.pending);
        let mut cost = SimTime::ZERO;
        let mut first = true;
        for (start, end) in pending {
            cost += self.access_cost(&mut state, start, end - start, !first);
            first = false;
            state.stats.sync_extents += 1;
        }
        if !cost.is_zero() {
            cost += self.params.controller_overhead;
        }
        state.stats.syncs += 1;
        drop(state);
        self.clock.charge_io(cost);
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::MemDevice;

    fn disk_with(params: DiskParams) -> (SimDisk, Clock) {
        let clock = Clock::new();
        let disk = SimDisk::new(
            Arc::new(MemDevice::with_len(100 << 20)),
            clock.clone(),
            params,
        );
        (disk, clock)
    }

    #[test]
    fn data_round_trips_through_the_model() {
        let (disk, _clock) = disk_with(DiskParams::circa_1990());
        disk.write_at(4096, b"hello").unwrap();
        disk.sync().unwrap();
        let mut buf = [0u8; 5];
        disk.read_at(4096, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn log_force_costs_about_17ms() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        // Steady-state: head already parked at the log tail.
        disk.write_at(0, &[0u8; 64]).unwrap();
        disk.sync().unwrap();
        let before = clock.snapshot();
        disk.write_at(64, &[0u8; 256]).unwrap();
        disk.sync().unwrap();
        let ms = (clock.snapshot() - before).io.as_millis_f64();
        assert!(
            (15.0..20.0).contains(&ms),
            "sequential log force should cost ~17.4 ms, got {ms}"
        );
    }

    #[test]
    fn sequential_writes_coalesce_into_one_extent() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        for i in 0..10u64 {
            disk.write_at(i * 100, &[0u8; 100]).unwrap();
        }
        let before = clock.snapshot();
        disk.sync().unwrap();
        let one_extent = (clock.snapshot() - before).io;
        assert_eq!(disk.stats().syncs, 1);

        // Ten far-scattered writes cost roughly ten seeks + rotations
        // (beyond the near-extent threshold, no elevator discount).
        let (disk2, clock2) = disk_with(DiskParams::circa_1990());
        for i in 0..10u64 {
            disk2.write_at(i * (8 << 20), &[0u8; 100]).unwrap();
        }
        let before = clock2.snapshot();
        disk2.sync().unwrap();
        let scattered = (clock2.snapshot() - before).io;
        assert!(
            scattered.as_nanos() > 5 * one_extent.as_nanos(),
            "scattered {scattered} vs sequential {one_extent}"
        );
    }

    #[test]
    fn grouped_force_costs_one_seek_and_contiguous_transfer() {
        // A group commit appends N records back to back and forces once.
        // The model must charge that like a single sequential transfer —
        // one coalesced extent, one seek — not N individual forces.
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        disk.write_at(0, &[0u8; 64]).unwrap();
        disk.sync().unwrap(); // park the head at the log tail
        let parked = disk.stats();

        let before = clock.snapshot();
        for i in 0..8u64 {
            disk.write_at(64 + i * 512, &[0u8; 512]).unwrap();
        }
        disk.sync().unwrap();
        let grouped_ms = (clock.snapshot() - before).io.as_millis_f64();
        let delta = disk.stats().delta_since(&parked);
        assert_eq!(delta.syncs, 1);
        assert_eq!(delta.sync_extents, 1, "contiguous appends must coalesce");
        assert!(
            (15.0..25.0).contains(&grouped_ms),
            "a grouped force should cost about one ~17.4 ms force, got {grouped_ms}"
        );

        // The same eight records forced one at a time pay ~8 rotations.
        let (disk2, clock2) = disk_with(DiskParams::circa_1990());
        disk2.write_at(0, &[0u8; 64]).unwrap();
        disk2.sync().unwrap();
        let before = clock2.snapshot();
        for i in 0..8u64 {
            disk2.write_at(64 + i * 512, &[0u8; 512]).unwrap();
            disk2.sync().unwrap();
        }
        let serial_ms = (clock2.snapshot() - before).io.as_millis_f64();
        assert_eq!(disk2.stats().sync_extents, 1 + 8);
        assert!(
            serial_ms > 4.0 * grouped_ms,
            "serialized forces ({serial_ms} ms) should dwarf one grouped force ({grouped_ms} ms)"
        );
    }

    #[test]
    fn reads_charge_seek_plus_rotation_plus_transfer() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        let mut buf = [0u8; 4096];
        disk.read_at(50 << 20, &mut buf).unwrap();
        let ms = clock.io_time().as_millis_f64();
        assert!(ms > 10.0, "random 4K read should cost >10 ms, got {ms}");
        assert_eq!(disk.stats().reads, 1);
        assert_eq!(disk.stats().bytes_read, 4096);
    }

    #[test]
    fn sequential_read_after_read_skips_the_seek() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        let mut buf = [0u8; 4096];
        disk.read_at(0, &mut buf).unwrap();
        let before = clock.snapshot();
        disk.read_at(4096, &mut buf).unwrap();
        let sequential = (clock.snapshot() - before).io;
        let before = clock.snapshot();
        disk.read_at(90 << 20, &mut buf).unwrap();
        let random = (clock.snapshot() - before).io;
        assert!(random > sequential);
    }

    #[test]
    fn empty_sync_is_free() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        disk.sync().unwrap();
        assert_eq!(clock.io_time(), SimTime::ZERO);
    }

    #[test]
    fn pending_extent_coalescing() {
        let mut pending = Vec::new();
        SimDisk::add_pending(&mut pending, 0, 10);
        SimDisk::add_pending(&mut pending, 10, 10); // adjacent
        SimDisk::add_pending(&mut pending, 5, 3); // contained
        assert_eq!(pending, vec![(0, 20)]);
        SimDisk::add_pending(&mut pending, 100, 10);
        SimDisk::add_pending(&mut pending, 50, 10);
        assert_eq!(pending, vec![(0, 20), (50, 60), (100, 110)]);
        SimDisk::add_pending(&mut pending, 15, 40); // bridges first two
        assert_eq!(pending, vec![(0, 60), (100, 110)]);
    }
}
