//! Coda-like workloads for reproducing **Table 2** (§7.3): the observed
//! savings in log traffic due to RVM's intra- and inter-transaction
//! optimizations on three Coda servers and six Coda clients.
//!
//! The paper's data came from four days of live Coda operation. What the
//! optimizations exploit is structural, and this generator produces both
//! phenomena synthetically:
//!
//! * **Servers** commit directory operations with *flush* transactions.
//!   Modularity and defensive programming make call chains re-declare
//!   ranges they may already have declared ("applications are often
//!   written to err on the side of caution", §5.2) — duplicate and
//!   overlapping `set_range`s that the intra-transaction optimization
//!   coalesces. Servers see **no** inter-transaction savings because that
//!   optimization only applies to no-flush transactions.
//!
//! * **Clients** persist replay logs and hoard state with *no-flush*
//!   transactions. Temporal locality — the paper's example is
//!   `cp d1/* d2` issuing one transaction per child of `d1`, each
//!   rewriting `d2`'s directory structure — creates bursts in which each
//!   commit subsumes its predecessor, so only the last record per burst
//!   survives a flush.
//!
//! Per-machine intensities (how defensive the code paths are, how long
//! the bursts run) are calibrated so the savings land near the paper's
//! per-machine percentages; transaction counts are the paper's divided by
//! [`SCALE`].

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rvm::segment::MemResolver;
use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
use rvm_storage::MemDevice;

/// Paper transaction counts are divided by this to keep runs quick.
pub const SCALE: u64 = 20;

/// Whether a machine runs the server or client workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// Coda file server: flush-mode meta-data transactions.
    Server,
    /// Coda client: no-flush replay-log/hoard transactions.
    Client,
}

/// One machine's workload profile.
#[derive(Debug, Clone)]
pub struct MachineProfile {
    /// Machine name (the paper's host names).
    pub name: &'static str,
    /// Server or client.
    pub kind: MachineKind,
    /// Transactions to commit (already scaled).
    pub txns: u64,
    /// Base object (directory block) size in bytes.
    pub obj_size: u64,
    /// Average *extra* fraction of the object re-declared by defensive
    /// call chains (drives intra-transaction savings).
    pub dup_intensity: f64,
    /// Mean burst length of same-directory updates (drives
    /// inter-transaction savings; 1.0 = no bursts). Ignored for servers.
    pub burst_mean: f64,
    /// Client flush period in transactions (bounded persistence).
    pub flush_every: u64,
}

/// Reference row from the paper's Table 2.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Machine name.
    pub name: &'static str,
    /// Transactions committed over the four days.
    pub txns: u64,
    /// Bytes written to the log (after optimizations).
    pub bytes: u64,
    /// Intra-transaction savings, percent.
    pub intra_pct: f64,
    /// Inter-transaction savings, percent.
    pub inter_pct: f64,
}

/// The paper's Table 2, verbatim.
pub const PAPER_TABLE2: [PaperRow; 9] = [
    PaperRow {
        name: "grieg",
        txns: 267_224,
        bytes: 289_215_032,
        intra_pct: 20.7,
        inter_pct: 0.0,
    },
    PaperRow {
        name: "haydn",
        txns: 483_978,
        bytes: 661_612_324,
        intra_pct: 21.5,
        inter_pct: 0.0,
    },
    PaperRow {
        name: "wagner",
        txns: 248_169,
        bytes: 264_557_372,
        intra_pct: 20.9,
        inter_pct: 0.0,
    },
    PaperRow {
        name: "mozart",
        txns: 34_744,
        bytes: 9_039_008,
        intra_pct: 41.6,
        inter_pct: 26.7,
    },
    PaperRow {
        name: "ives",
        txns: 21_013,
        bytes: 6_842_648,
        intra_pct: 31.2,
        inter_pct: 22.0,
    },
    PaperRow {
        name: "verdi",
        txns: 21_907,
        bytes: 5_789_696,
        intra_pct: 28.1,
        inter_pct: 20.9,
    },
    PaperRow {
        name: "bach",
        txns: 26_209,
        bytes: 10_787_736,
        intra_pct: 25.8,
        inter_pct: 21.9,
    },
    PaperRow {
        name: "purcell",
        txns: 76_491,
        bytes: 12_247_508,
        intra_pct: 41.3,
        inter_pct: 36.2,
    },
    PaperRow {
        name: "berlioz",
        txns: 101_168,
        bytes: 14_918_736,
        intra_pct: 17.3,
        inter_pct: 64.3,
    },
];

/// Calibrated per-machine profiles (servers first, like the paper).
pub fn profiles() -> Vec<MachineProfile> {
    vec![
        MachineProfile {
            name: "grieg",
            kind: MachineKind::Server,
            txns: 267_224 / SCALE,
            obj_size: 960,
            dup_intensity: 0.30,
            burst_mean: 1.0,
            flush_every: 0,
        },
        MachineProfile {
            name: "haydn",
            kind: MachineKind::Server,
            txns: 483_978 / SCALE,
            obj_size: 1248,
            dup_intensity: 0.32,
            burst_mean: 1.0,
            flush_every: 0,
        },
        MachineProfile {
            name: "wagner",
            kind: MachineKind::Server,
            txns: 248_169 / SCALE,
            obj_size: 944,
            dup_intensity: 0.31,
            burst_mean: 1.0,
            flush_every: 0,
        },
        MachineProfile {
            name: "mozart",
            kind: MachineKind::Client,
            txns: 34_744 / SCALE,
            obj_size: 224,
            dup_intensity: 1.05,
            burst_mean: 2.0,
            flush_every: 64,
        },
        MachineProfile {
            name: "ives",
            kind: MachineKind::Client,
            txns: 21_013 / SCALE,
            obj_size: 288,
            dup_intensity: 0.62,
            burst_mean: 1.45,
            flush_every: 64,
        },
        MachineProfile {
            name: "verdi",
            kind: MachineKind::Client,
            txns: 21_907 / SCALE,
            obj_size: 240,
            dup_intensity: 0.55,
            burst_mean: 1.4,
            flush_every: 64,
        },
        MachineProfile {
            name: "bach",
            kind: MachineKind::Client,
            txns: 26_209 / SCALE,
            obj_size: 368,
            dup_intensity: 0.44,
            burst_mean: 1.42,
            flush_every: 64,
        },
        MachineProfile {
            name: "purcell",
            kind: MachineKind::Client,
            txns: 76_491 / SCALE,
            obj_size: 144,
            dup_intensity: 1.30,
            burst_mean: 3.1,
            flush_every: 64,
        },
        MachineProfile {
            name: "berlioz",
            kind: MachineKind::Client,
            txns: 101_168 / SCALE,
            obj_size: 128,
            dup_intensity: 0.45,
            burst_mean: 7.5,
            flush_every: 64,
        },
    ]
}

/// Measured results for one machine.
#[derive(Debug, Clone)]
pub struct MachineRow {
    /// Machine name.
    pub name: &'static str,
    /// Transactions committed.
    pub txns: u64,
    /// Bytes written to the log after both optimizations.
    pub bytes_logged: u64,
    /// Intra-transaction savings, percent of original log volume.
    pub intra_pct: f64,
    /// Inter-transaction savings, percent of original log volume.
    pub inter_pct: f64,
}

impl MachineRow {
    /// Total savings, percent.
    pub fn total_pct(&self) -> f64 {
        self.intra_pct + self.inter_pct
    }
}

/// Number of directory objects each machine's region holds.
const NUM_OBJECTS: u64 = 512;

/// Runs one machine's workload against a fresh RVM instance and reports
/// its Table 2 row.
pub fn run_machine(profile: &MachineProfile, seed: u64) -> MachineRow {
    let region_len =
        (NUM_OBJECTS * profile.obj_size * 2).div_ceil(PAGE_SIZE) * PAGE_SIZE + PAGE_SIZE;
    let log = Arc::new(MemDevice::with_len(256 << 20));
    let rvm = Rvm::initialize(
        Options::new(log)
            .resolver(MemResolver::new().into_resolver())
            .create_if_empty(),
    )
    .expect("initialize");
    let region = rvm
        .map(&RegionDescriptor::new("coda-meta", 0, region_len))
        .expect("map");
    let mut rng = StdRng::seed_from_u64(seed);

    let mut committed = 0u64;
    let mut burst_left = 0u64;
    let mut burst_obj = 0u64;
    let mut burst_step = 0u64;
    while committed < profile.txns {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");

        let (obj, write_len) = match profile.kind {
            MachineKind::Server => (rng.random_range(0..NUM_OBJECTS), profile.obj_size),
            MachineKind::Client => {
                if burst_left == 0 {
                    // Start a new burst: `cp d1/* d2` touches one target
                    // directory once per child.
                    burst_obj = rng.random_range(0..NUM_OBJECTS);
                    burst_step = 0;
                    let p = 1.0 / profile.burst_mean.max(1.0);
                    burst_left = 1;
                    while burst_left < 64 && rng.random_range(0.0..1.0) > p {
                        burst_left += 1;
                    }
                }
                burst_left -= 1;
                burst_step += 1;
                // The directory block grows a little with each entry; a
                // later rewrite covers all earlier ones.
                (
                    burst_obj,
                    (profile.obj_size + burst_step * 8).min(profile.obj_size * 2),
                )
            }
        };
        let base = obj * profile.obj_size * 2;

        // The primary declaration plus the write.
        let payload = vec![(committed & 0xFF) as u8; write_len as usize];
        region.write(&mut txn, base, &payload).expect("write");

        // Defensive re-declarations by helper procedures: duplicates and
        // overlaps that the intra optimization will coalesce.
        let mut extra = (profile.obj_size as f64 * profile.dup_intensity) as u64;
        while extra > 0 {
            let len = extra.min(profile.obj_size / 2).max(16).min(write_len);
            let start = base + rng.random_range(0..=(write_len - len));
            txn.set_range(&region, start, len).expect("set_range");
            extra = extra.saturating_sub(len);
        }

        let mode = match profile.kind {
            MachineKind::Server => CommitMode::Flush,
            MachineKind::Client => CommitMode::NoFlush,
        };
        txn.commit(mode).expect("commit");
        committed += 1;

        if profile.kind == MachineKind::Client
            && profile.flush_every > 0
            && committed.is_multiple_of(profile.flush_every)
        {
            rvm.flush().expect("flush");
        }
    }
    rvm.flush().expect("final flush");

    let stats = rvm.stats();
    MachineRow {
        name: profile.name,
        txns: committed,
        bytes_logged: stats.bytes_logged,
        intra_pct: stats.intra_savings_fraction() * 100.0,
        inter_pct: stats.inter_savings_fraction() * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str) -> MachineProfile {
        profiles().into_iter().find(|p| p.name == name).unwrap()
    }

    #[test]
    fn servers_have_intra_but_no_inter_savings() {
        let mut p = profile("grieg");
        p.txns = 500;
        let row = run_machine(&p, 1);
        assert_eq!(row.txns, 500);
        assert!(row.intra_pct > 5.0, "intra {}", row.intra_pct);
        assert_eq!(row.inter_pct, 0.0);
    }

    #[test]
    fn clients_get_both_kinds_of_savings() {
        let mut p = profile("berlioz");
        p.txns = 2000;
        let row = run_machine(&p, 2);
        assert!(row.intra_pct > 5.0, "intra {}", row.intra_pct);
        assert!(row.inter_pct > 20.0, "inter {}", row.inter_pct);
    }

    #[test]
    fn longer_bursts_mean_more_inter_savings() {
        let mut short = profile("verdi");
        short.txns = 2000;
        let mut long = short.clone();
        long.burst_mean = 10.0;
        let a = run_machine(&short, 3);
        let b = run_machine(&long, 3);
        assert!(
            b.inter_pct > a.inter_pct + 5.0,
            "short {} vs long {}",
            a.inter_pct,
            b.inter_pct
        );
    }

    #[test]
    fn paper_reference_rows_are_consistent() {
        assert_eq!(PAPER_TABLE2.len(), 9);
        // The paper's servers show zero inter-transaction savings.
        for row in &PAPER_TABLE2[..3] {
            assert_eq!(row.inter_pct, 0.0);
        }
        let profs = profiles();
        assert_eq!(profs.len(), 9);
        for (p, r) in profs.iter().zip(PAPER_TABLE2.iter()) {
            assert_eq!(p.name, r.name);
            assert_eq!(p.txns, r.txns / SCALE);
        }
    }
}
