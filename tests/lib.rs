// Shared helpers for the workspace integration tests, `include!`d into
// each test binary as `mod common`.

use std::sync::Arc;

use rvm::segment::MemResolver;
use rvm::{Options, Rvm, Tuning};
use rvm_storage::MemDevice;

/// A self-contained world: one in-memory log plus shared segments, both
/// surviving simulated reboots.
pub struct World {
    /// The log device.
    pub log: Arc<MemDevice>,
    /// Shared named segments.
    pub segments: MemResolver,
}

impl World {
    /// Creates a world with a log of `log_len` bytes.
    pub fn new(log_len: u64) -> Self {
        Self {
            log: Arc::new(MemDevice::with_len(log_len)),
            segments: MemResolver::new(),
        }
    }

    /// Options bound to this world's devices.
    pub fn options(&self) -> Options {
        Options::new(self.log.clone())
            .resolver(self.segments.clone().into_resolver())
            .create_if_empty()
    }

    /// Boots an RVM instance (running recovery).
    pub fn boot(&self) -> Rvm {
        Rvm::initialize(self.options()).expect("initialize")
    }

    /// Boots with specific tuning. (Compiled into every test binary;
    /// not all of them use it.)
    #[allow(dead_code)]
    pub fn boot_tuned(&self, tuning: Tuning) -> Rvm {
        Rvm::initialize(self.options().tuning(tuning)).expect("initialize")
    }
}
