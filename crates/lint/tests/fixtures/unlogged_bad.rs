// Known-bad fixture for the unlogged-write pass: the paper's section 6
// disaster — mutating mapped region memory without declaring a range.

fn deref_write_without_set_range(region: &Region) {
    let base = region.base_ptr();
    unsafe {
        *base.add(16) = 0xAB;
    }
}

fn bulk_copy_without_set_range(region: &Region, src: &[u8]) {
    let base = region.base_ptr();
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr(), base, src.len());
    }
}

fn ptr_write_without_set_range(region: &Region, value: u64) {
    let base = region.base_ptr();
    unsafe {
        std::ptr::write(base.cast::<u64>(), value);
    }
}
