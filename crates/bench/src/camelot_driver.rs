//! TPC-A driver for the Camelot baseline.

use std::sync::Arc;

use camelot_sim::{Camelot, CamelotParams};
use rvm_storage::NullDevice;
use simclock::{Clock, SimTime};
use simdisk::SimDisk;
use simvm::{SimVm, VmParams, VM_PAGE_SIZE};
use tpca::{TpcaLayout, TpcaTxn};

use crate::model::Machine;
use crate::tpca_run::TpcaSystem;

/// CPU charged per Camelot page fault: the external-pager path is several
/// Mach IPC round trips through the Disk Manager (§3.2), far costlier
/// than an in-kernel fault.
pub fn camelot_fault_cpu(params: &CamelotParams) -> SimTime {
    params.ipc_cost * 8 + params.context_switch * 8
}

/// The Camelot system under test.
pub struct CamelotTpca {
    clock: Clock,
    cam: Camelot,
    layout: TpcaLayout,
}

impl CamelotTpca {
    /// Builds a Camelot node sized for `accounts`.
    pub fn new(machine: &Machine, params: CamelotParams, accounts: u64) -> Self {
        let clock = Clock::new();
        let layout = TpcaLayout::new(accounts);
        let log_disk = Arc::new(SimDisk::new(
            Arc::new(NullDevice::new(256 << 20)),
            clock.clone(),
            machine.disk.clone(),
        ));
        // Single-copy backing store: the data segment itself (§3.2).
        let data_disk = Arc::new(SimDisk::new(
            Arc::new(NullDevice::new(layout.total_len() + VM_PAGE_SIZE)),
            clock.clone(),
            machine.disk.clone(),
        ));
        let vm = SimVm::new(
            clock.clone(),
            (machine.camelot_avail_bytes / VM_PAGE_SIZE) as usize,
            VmParams {
                fault_service_cpu: camelot_fault_cpu(&params),
                hit_cpu: SimTime::ZERO,
                // Pageout through the external pager: two IPC round trips.
                evict_cpu: params.ipc_cost * 2,
                pageout_cluster: 8,
            },
        );
        let cam = Camelot::new(
            clock.clone(),
            params,
            log_disk,
            vm,
            data_disk,
            layout.total_len(),
        );
        Self { clock, cam, layout }
    }

    /// Camelot-side statistics.
    pub fn stats(&self) -> camelot_sim::CamelotStats {
        self.cam.stats()
    }

    /// Paging statistics.
    pub fn vm_stats(&self) -> simvm::VmStats {
        self.cam.vm_stats()
    }
}

impl TpcaSystem for CamelotTpca {
    fn warm_up(&mut self) {
        let pages = self.layout.total_len() / VM_PAGE_SIZE;
        for page in 0..pages {
            self.cam.read(page * VM_PAGE_SIZE, 1);
        }
    }

    fn run_txn(&mut self, t: &TpcaTxn) {
        let l = self.layout;
        self.cam.begin_transaction();
        self.cam.read(l.account_offset(t.account), 128);
        self.cam.modify(l.account_offset(t.account), 128);
        self.cam.modify(l.teller_offset(t.teller), 128);
        self.cam.modify(l.branch_offset(), 128);
        self.cam.modify(l.audit_slot_offset(t.audit_slot), 64);
        self.cam.end_transaction();
    }

    fn clock(&self) -> &Clock {
        &self.clock
    }
}
