//! Configuration: the canonical lock order (`lockorder.toml`) and the
//! finding baseline (`lint-baseline.toml`).

use std::fmt;
use std::path::Path;

use crate::toml::{self, Val};

/// One declared lock (or lock family) in the canonical order.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Unique rank; acquisitions must be strictly rank-increasing while
    /// other locks are held.
    pub rank: i64,
    /// Short name used in findings and rendered docs.
    pub name: String,
    /// Acquisition patterns, `field.method` (e.g. `core.lock`,
    /// `regions.read`). Matched as a suffix of the receiver chain, the
    /// longest pattern winning.
    pub patterns: Vec<String>,
    /// Human description for the rendered DESIGN.md section.
    pub desc: String,
}

/// A declared condvar and the lock it parks on.
#[derive(Debug, Clone)]
pub struct CondvarDecl {
    pub name: String,
    /// Receiver-chain suffix of the condvar field (e.g. `epoch_done`).
    pub pattern: String,
    /// Name of the [`LockDecl`] whose guard it releases while parked.
    pub parks: String,
    pub desc: String,
}

/// The parsed canonical lock order.
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    pub locks: Vec<LockDecl>,
    pub condvars: Vec<CondvarDecl>,
    /// Free-text preamble lines rendered into the docs section.
    pub notes: Vec<String>,
}

/// Errors loading configuration.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

fn cfg_err(msg: impl Into<String>) -> ConfigError {
    ConfigError(msg.into())
}

impl LockOrder {
    /// Parses and validates `lockorder.toml` content.
    pub fn parse(src: &str) -> Result<LockOrder, ConfigError> {
        let doc = toml::parse(src).map_err(|e| cfg_err(format!("lockorder.toml: {e}")))?;
        let mut order = LockOrder::default();
        if let Some(Val::List(notes)) = doc.root.get("notes") {
            for n in notes {
                if let Some(s) = n.as_str() {
                    order.notes.push(s.to_string());
                }
            }
        }
        for t in doc.all("lock") {
            let name = t
                .str_of("name")
                .ok_or_else(|| cfg_err("[[lock]] missing `name`"))?
                .to_string();
            let rank = t
                .get("rank")
                .and_then(Val::as_int)
                .ok_or_else(|| cfg_err(format!("lock `{name}` missing integer `rank`")))?;
            let patterns: Vec<String> = t
                .get("patterns")
                .and_then(Val::as_list)
                .map(|l| {
                    l.iter()
                        .filter_map(|v| v.as_str().map(String::from))
                        .collect()
                })
                .unwrap_or_default();
            if patterns.is_empty() {
                return Err(cfg_err(format!("lock `{name}` has no patterns")));
            }
            for p in &patterns {
                let ok = p
                    .rsplit_once('.')
                    .is_some_and(|(_, m)| matches!(m, "lock" | "read" | "write"));
                if !ok {
                    return Err(cfg_err(format!(
                        "lock `{name}` pattern `{p}` must end in .lock/.read/.write"
                    )));
                }
            }
            order.locks.push(LockDecl {
                rank,
                name,
                patterns,
                desc: t.str_of("desc").unwrap_or_default().to_string(),
            });
        }
        for t in doc.all("condvar") {
            let name = t
                .str_of("name")
                .ok_or_else(|| cfg_err("[[condvar]] missing `name`"))?
                .to_string();
            order.condvars.push(CondvarDecl {
                pattern: t.str_of("pattern").unwrap_or(&name).to_string(),
                parks: t
                    .str_of("parks")
                    .ok_or_else(|| cfg_err(format!("condvar `{name}` missing `parks`")))?
                    .to_string(),
                desc: t.str_of("desc").unwrap_or_default().to_string(),
                name,
            });
        }
        if order.locks.is_empty() {
            return Err(cfg_err("lockorder.toml declares no [[lock]] entries"));
        }
        let mut ranks: Vec<i64> = order.locks.iter().map(|l| l.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        if ranks.len() != order.locks.len() {
            return Err(cfg_err("lock ranks must be unique (a total order)"));
        }
        let mut names: Vec<&str> = order.locks.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != order.locks.len() {
            return Err(cfg_err("lock names must be unique"));
        }
        for c in &order.condvars {
            if !order.locks.iter().any(|l| l.name == c.parks) {
                return Err(cfg_err(format!(
                    "condvar `{}` parks on undeclared lock `{}`",
                    c.name, c.parks
                )));
            }
        }
        order.locks.sort_by_key(|l| l.rank);
        Ok(order)
    }

    /// Loads from a file.
    pub fn load(path: &Path) -> Result<LockOrder, ConfigError> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| cfg_err(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&src)
    }

    /// Lock declaration by name.
    pub fn by_name(&self, name: &str) -> Option<&LockDecl> {
        self.locks.iter().find(|l| l.name == name)
    }

    /// Renders the DESIGN.md "Locking" section body. This output is the
    /// single source of truth shared by the docs and the checker; a test
    /// asserts DESIGN.md contains it verbatim.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "The canonical lock acquisition order is declared in\n\
             [`lockorder.toml`](lockorder.toml) and machine-checked by\n\
             `rvm-lint` (pass `lock-order`) on every CI run; this section is\n\
             rendered from that file (`rvm-lint --update-design`). Locks must\n\
             be acquired in strictly increasing rank while any other lock is\n\
             held; a condvar may only park on its declared lock, with nothing\n\
             else held.\n\n",
        );
        out.push_str("| Rank | Lock | Acquired as | Role |\n");
        out.push_str("|---|---|---|---|\n");
        for l in &self.locks {
            let pats: Vec<String> = l.patterns.iter().map(|p| format!("`{p}()`")).collect();
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                l.rank,
                l.name,
                pats.join(", "),
                l.desc
            ));
        }
        if !self.condvars.is_empty() {
            out.push_str("\nCondvars (each releases its lock while parked):\n\n");
            for c in &self.condvars {
                out.push_str(&format!(
                    "* `{}` parks on **{}** — {}\n",
                    c.name, c.parks, c.desc
                ));
            }
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("* {n}\n"));
            }
        }
        out
    }
}

/// One suppressed finding in `lint-baseline.toml`.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    pub id: String,
    pub file: String,
    pub function: String,
    pub note: String,
}

/// The checked-in baseline: findings that existed when the ratchet was
/// introduced (or were judged intentional). CI fails only on findings
/// *not* in this set.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    pub fn parse(src: &str) -> Result<Baseline, ConfigError> {
        let doc = toml::parse(src).map_err(|e| cfg_err(format!("lint-baseline.toml: {e}")))?;
        let mut out = Baseline::default();
        for t in doc.all("suppress") {
            out.entries.push(BaselineEntry {
                id: t
                    .str_of("id")
                    .ok_or_else(|| cfg_err("[[suppress]] missing `id`"))?
                    .to_string(),
                file: t.str_of("file").unwrap_or_default().to_string(),
                function: t.str_of("function").unwrap_or_default().to_string(),
                note: t.str_of("note").unwrap_or_default().to_string(),
            });
        }
        Ok(out)
    }

    pub fn load(path: &Path) -> Result<Baseline, ConfigError> {
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let src = std::fs::read_to_string(path)
            .map_err(|e| cfg_err(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&src)
    }

    pub fn contains(&self, id: &str) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Serializes a baseline for the given findings (used by
    /// `--write-baseline`). Notes on entries that survive from `prev`
    /// are preserved.
    pub fn render(findings: &[crate::findings::Finding], prev: &Baseline) -> String {
        let mut out = String::from(
            "# rvm-lint finding baseline.\n\
             #\n\
             # Findings listed here are known and suppressed; CI fails only on\n\
             # findings NOT in this file (the ratchet). Regenerate after fixing\n\
             # code with:  cargo run -p rvm-lint -- --write-baseline\n\
             # Never regenerate to absorb a *new* finding without review.\n\n\
             schema = 1\n",
        );
        for f in findings {
            let note = prev
                .entries
                .iter()
                .find(|e| e.id == f.id)
                .map(|e| e.note.clone())
                .filter(|n| !n.is_empty())
                .unwrap_or_else(|| f.message.clone());
            out.push_str("\n[[suppress]]\n");
            out.push_str(&format!("id = {}\n", crate::toml::escape(&f.id)));
            out.push_str(&format!("file = {}\n", crate::toml::escape(&f.file)));
            out.push_str(&format!(
                "function = {}\n",
                crate::toml::escape(&f.function)
            ));
            out.push_str(&format!("note = {}\n", crate::toml::escape(&note)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
notes = ["note one"]
[[lock]]
rank = 10
name = "core"
patterns = ["core.lock"]
desc = "the core"
[[lock]]
rank = 20
name = "regions"
patterns = ["regions.read", "regions.write"]
desc = "region map"
[[condvar]]
name = "epoch_done"
pattern = "epoch_done"
parks = "core"
desc = "epoch completion"
"#;

    #[test]
    fn parses_and_validates() {
        let o = LockOrder::parse(MINIMAL).unwrap();
        assert_eq!(o.locks.len(), 2);
        assert_eq!(o.condvars[0].parks, "core");
        assert!(o.render_markdown().contains("| 10 | core |"));
    }

    #[test]
    fn rejects_duplicate_ranks_and_bad_parks() {
        let dup = MINIMAL.replace("rank = 20", "rank = 10");
        assert!(LockOrder::parse(&dup).is_err());
        let bad = MINIMAL.replace("parks = \"core\"", "parks = \"nope\"");
        assert!(LockOrder::parse(&bad).is_err());
    }
}
