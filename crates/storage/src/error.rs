//! Error type shared by all device implementations.

use std::fmt;
use std::io;

/// Result alias for device operations.
pub type Result<T> = std::result::Result<T, DeviceError>;

/// The device operation an injected fault fired on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// A positional read.
    Read,
    /// A positional write.
    Write,
    /// A synchronous flush.
    Sync,
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Sync => "sync",
        })
    }
}

/// An error from a storage device.
#[derive(Debug)]
pub enum DeviceError {
    /// An underlying operating-system I/O error.
    Io(io::Error),
    /// Access beyond the end of the device.
    OutOfBounds {
        /// Offset of the first byte of the rejected access.
        offset: u64,
        /// Length of the rejected access.
        len: u64,
        /// Current device length.
        device_len: u64,
    },
    /// The device hit its planned crash point (see
    /// [`FaultDevice`](crate::FaultDevice)); all subsequent operations fail
    /// with this error.
    Crashed,
    /// A fault injected by a [`FlakyDevice`](crate::FlakyDevice) schedule.
    Injected {
        /// The operation the fault fired on.
        op: FaultOp,
        /// Whether a retry of the same operation may succeed.
        transient: bool,
    },
}

impl DeviceError {
    /// Returns `true` if retrying the failed operation may succeed.
    ///
    /// This is the taxonomy a bounded retry policy keys on: injected
    /// transient faults and the retryable `io::ErrorKind`s are transient;
    /// out-of-bounds accesses, simulated crashes, permanent injected
    /// faults, and all other OS errors are not.
    pub fn is_transient(&self) -> bool {
        match self {
            DeviceError::Injected { transient, .. } => *transient,
            DeviceError::Io(err) => matches!(
                err.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            DeviceError::OutOfBounds { .. } | DeviceError::Crashed => false,
        }
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Io(err) => write!(f, "device I/O error: {err}"),
            DeviceError::OutOfBounds {
                offset,
                len,
                device_len,
            } => write!(
                f,
                "access [{offset}, {}) out of bounds for device of length {device_len}",
                offset + len
            ),
            DeviceError::Crashed => write!(f, "device crashed (simulated)"),
            DeviceError::Injected { op, transient } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "injected {kind} fault on {op}")
            }
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for DeviceError {
    fn from(err: io::Error) -> Self {
        DeviceError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DeviceError::OutOfBounds {
            offset: 10,
            len: 4,
            device_len: 12,
        };
        assert_eq!(
            e.to_string(),
            "access [10, 14) out of bounds for device of length 12"
        );
        assert!(DeviceError::Crashed.to_string().contains("crashed"));
        let io_err = DeviceError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
    }

    #[test]
    fn transient_taxonomy() {
        assert!(DeviceError::Injected {
            op: FaultOp::Write,
            transient: true
        }
        .is_transient());
        assert!(!DeviceError::Injected {
            op: FaultOp::Sync,
            transient: false
        }
        .is_transient());
        assert!(DeviceError::from(io::Error::from(io::ErrorKind::Interrupted)).is_transient());
        assert!(!DeviceError::from(io::Error::other("boom")).is_transient());
        assert!(!DeviceError::Crashed.is_transient());
        assert!(!DeviceError::OutOfBounds {
            offset: 0,
            len: 1,
            device_len: 0
        }
        .is_transient());
        let e = DeviceError::Injected {
            op: FaultOp::Read,
            transient: true,
        };
        assert_eq!(e.to_string(), "injected transient fault on read");
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error as _;
        let e = DeviceError::from(io::Error::other("inner"));
        assert!(e.source().is_some());
        assert!(DeviceError::Crashed.source().is_none());
    }
}
