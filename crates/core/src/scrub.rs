//! Media-failure detection: per-page checksum catalogs and scrub reports.
//!
//! The paper delegates media recovery to the layer below RVM ("RVM is
//! concerned solely with recovery from process and system failures...
//! media failures have to be handled by mirroring", §3.1). This module
//! supplies the detection half of that layer: every data segment carries a
//! sidecar *checksum catalog* — one CRC-32 per [`PAGE_SIZE`] page —
//! updated whenever truncation or recovery writes segment pages and
//! verified whenever mapped regions load pages, by explicit
//! [`Rvm::scrub`](crate::Rvm::scrub) passes, and by the optional
//! background scrubber ([`Tuning::background_scrub`](crate::Tuning)).
//!
//! A checksum mismatch feeds the repair ladder (in `rvm.rs`): a healthy
//! mirror replica first, then reconstruction from the committed image
//! (the un-truncated log span, whose contents the VM image of a loaded
//! page reproduces exactly), else quarantine of the affected region into
//! read-only degraded mode ([`RvmError::Media`](crate::RvmError::Media)).
//!
//! # Catalog format
//!
//! The sidecar is named `{segment}.sums` and resolved through the same
//! [`DeviceResolver`](crate::segment::DeviceResolver) as the segment, so
//! a mirrored or fault-injected resolver covers the catalog too:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"RVMC"
//!      4     4  version (little-endian u32, currently 1)
//!      8     8  page count (little-endian u64)
//!     16     4  CRC-32 of the entry table
//!     20     4  reserved (zero)
//!     24   4*n  entry table: CRC-32 per page, little-endian
//! ```
//!
//! The table CRC makes the catalog self-verifying: a torn catalog write
//! (crash mid-persist) reads back as *invalid*, not as a sea of false
//! mismatches, and an invalid catalog is re-adopted from the current
//! segment content. Adoption is trust-on-first-use: the catalog protects
//! against rot *after* it was written, never against a segment that was
//! already wrong when first seen.
//!
//! # Crash ordering
//!
//! Writers keep one invariant: **the log head advances only after the
//! catalog covering the applied pages is persisted.** Truncation and
//! recovery order their steps segment writes → segment sync → catalog
//! persist → status (head) advance. A crash in any window therefore
//! leaves a catalog that is either current, or stale for pages the
//! still-live log span re-applies (recovery rewrites them and recomputes
//! their checksums before anything verifies), or torn (self-check fails,
//! re-adopted).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rvm_storage::Device;

use crate::crc::crc32;
use crate::error::Result;
use crate::options::PAGE_SIZE;
use crate::ranges::IntervalMap;

const MAGIC: &[u8; 4] = b"RVMC";
const VERSION: u32 = 1;
const HEADER_SIZE: u64 = 24;
const ENTRY_SIZE: u64 = 4;

/// Extra read attempts before a checksum mismatch is treated as resident
/// corruption rather than a transient read error. A re-read costs little
/// and distinguishes rot on the medium from rot on the wire.
pub(crate) const MEDIA_READ_RETRIES: usize = 2;

/// Returns the sidecar catalog name for a segment name.
pub fn sidecar_name(segment: &str) -> String {
    format!("{segment}.sums")
}

/// Whether `name` is a checksum-catalog sidecar (the inverse of
/// [`sidecar_name`]). Tools walking a resolver's namespace use this to
/// tell data segments from their derived catalogs.
pub fn is_sidecar(name: &str) -> bool {
    name.ends_with(".sums")
}

/// Number of catalog pages covering a segment of `seg_len` bytes.
pub fn page_count(seg_len: u64) -> usize {
    seg_len.div_ceil(PAGE_SIZE) as usize
}

/// Byte length of `page` within a segment of `seg_len` bytes (the last
/// page may be partial).
pub fn page_len(seg_len: u64, page: usize) -> usize {
    let off = page as u64 * PAGE_SIZE;
    PAGE_SIZE.min(seg_len.saturating_sub(off)) as usize
}

/// Device length a catalog over `pages` entries needs.
fn catalog_len(pages: usize) -> u64 {
    HEADER_SIZE + pages as u64 * ENTRY_SIZE
}

/// A per-page checksum catalog for one data segment, backed by a sidecar
/// device.
///
/// The in-memory entry table is the source of truth between
/// [`SegmentChecksums::persist`] calls; writers update entries as they
/// write segment pages and persist once per batch, before the log head
/// moves past the covered records.
pub struct SegmentChecksums {
    dev: Arc<dyn Device>,
    entries: Mutex<Vec<u32>>,
}

impl SegmentChecksums {
    /// Opens the catalog on `dev`, covering a segment of `seg_len` bytes.
    ///
    /// A valid persisted catalog is loaded; an empty, torn, or
    /// foreign-format device is re-adopted from the segment's current
    /// content (trust-on-first-use). A catalog shorter than the segment
    /// (the segment grew) adopts the new tail pages.
    pub fn open(dev: Arc<dyn Device>, seg: &dyn Device, seg_len: u64) -> Result<Self> {
        let needed = page_count(seg_len);
        let mut entries: Vec<u32> = Self::load(dev.as_ref())?.unwrap_or_default();
        let known = entries.len();
        if known < needed {
            entries.resize(needed, 0);
            for (page, entry) in entries.iter_mut().enumerate().skip(known) {
                *entry = checksum_of(seg, seg_len, page)?;
            }
        }
        let catalog = SegmentChecksums {
            dev,
            entries: Mutex::new(entries),
        };
        if known < needed {
            catalog.persist()?;
        }
        Ok(catalog)
    }

    /// Reads and validates the persisted entry table without adopting
    /// anything — the offline-tool path. Unlike [`SegmentChecksums::open`]
    /// (which adopts and *writes* a catalog for an uncovered segment),
    /// this never touches the device. `None` when it holds no
    /// self-consistent catalog (empty, torn, or foreign bytes).
    pub fn load_readonly(dev: &dyn Device) -> Result<Option<Vec<u32>>> {
        Self::load(dev)
    }

    /// Reads and validates the persisted catalog; `None` when the device
    /// holds no self-consistent catalog (empty, torn, or foreign bytes).
    fn load(dev: &dyn Device) -> Result<Option<Vec<u32>>> {
        let len = dev.len()?;
        if len < HEADER_SIZE {
            return Ok(None);
        }
        let mut header = [0u8; HEADER_SIZE as usize];
        dev.read_at(0, &mut header)?;
        if &header[0..4] != MAGIC || u32::from_le_bytes(header[4..8].try_into().unwrap()) != VERSION
        {
            return Ok(None);
        }
        let pages = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let table_crc = u32::from_le_bytes(header[16..20].try_into().unwrap());
        if pages > (len - HEADER_SIZE) / ENTRY_SIZE {
            return Ok(None);
        }
        let mut table = vec![0u8; (pages * ENTRY_SIZE) as usize];
        dev.read_at(HEADER_SIZE, &mut table)?;
        if crc32(&table) != table_crc {
            return Ok(None);
        }
        Ok(Some(
            table
                .chunks_exact(ENTRY_SIZE as usize)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        ))
    }

    /// Grows the catalog to cover a segment that grew to `seg_len`,
    /// adopting checksums for the new tail pages. No-op when already
    /// covering.
    pub fn ensure_covers(&self, seg: &dyn Device, seg_len: u64) -> Result<()> {
        let needed = page_count(seg_len);
        let adopt_from = {
            let entries = self.entries.lock();
            if entries.len() >= needed {
                return Ok(());
            }
            entries.len()
        };
        // Checksum the new pages outside the lock; entries never shrink,
        // so the starting point stays valid.
        let mut fresh = Vec::with_capacity(needed - adopt_from);
        for page in adopt_from..needed {
            fresh.push(checksum_of(seg, seg_len, page)?);
        }
        {
            let mut entries = self.entries.lock();
            for (i, sum) in fresh.into_iter().enumerate() {
                let page = adopt_from + i;
                if page >= entries.len() {
                    entries.resize(page + 1, 0);
                    entries[page] = sum;
                }
            }
        }
        self.persist()
    }

    /// Number of pages the catalog covers.
    pub fn pages(&self) -> usize {
        self.entries.lock().len()
    }

    /// The expected CRC-32 of `page`, if covered.
    pub fn expected(&self, page: usize) -> Option<u32> {
        self.entries.lock().get(page).copied()
    }

    /// Whether `data` (the page's exact current bytes) matches the
    /// catalog entry for `page`. Uncovered pages verify trivially.
    pub fn verify(&self, page: usize, data: &[u8]) -> bool {
        match self.expected(page) {
            Some(sum) => crc32(data) == sum,
            None => true,
        }
    }

    /// Records the new content of `page` in memory (call
    /// [`SegmentChecksums::persist`] before the log head advances past
    /// the records that produced it).
    pub fn update(&self, page: usize, data: &[u8]) {
        let mut entries = self.entries.lock();
        if entries.len() <= page {
            entries.resize(page + 1, 0);
        }
        entries[page] = crc32(data);
    }

    /// Re-reads `page` from the segment and records its checksum — for
    /// writers that updated a page through partial-range writes and no
    /// longer hold the full page image.
    pub fn update_from_segment(&self, seg: &dyn Device, seg_len: u64, page: usize) -> Result<()> {
        let sum = checksum_of(seg, seg_len, page)?;
        let mut entries = self.entries.lock();
        if entries.len() <= page {
            entries.resize(page + 1, 0);
        }
        entries[page] = sum;
        Ok(())
    }

    /// Writes the catalog (header + entry table) to the sidecar device
    /// and syncs it.
    pub fn persist(&self) -> Result<()> {
        let table: Vec<u8> = {
            let entries = self.entries.lock();
            entries.iter().flat_map(|e| e.to_le_bytes()).collect()
        };
        let pages = (table.len() as u64) / ENTRY_SIZE;
        let mut header = [0u8; HEADER_SIZE as usize];
        header[0..4].copy_from_slice(MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&pages.to_le_bytes());
        header[16..20].copy_from_slice(&crc32(&table).to_le_bytes());
        let needed = catalog_len(pages as usize);
        if self.dev.len()? < needed {
            self.dev.set_len(needed)?;
        }
        // Table first, header (with its covering CRC) last: a torn
        // persist fails the self-check instead of validating stale
        // entries against a new page count.
        self.dev.write_at(HEADER_SIZE, &table)?;
        self.dev.write_at(0, &header)?;
        self.dev.sync()?;
        Ok(())
    }
}

impl std::fmt::Debug for SegmentChecksums {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentChecksums")
            .field("pages", &self.pages())
            .finish()
    }
}

/// CRC-32 of `page`'s current bytes on the segment device.
pub fn checksum_of(seg: &dyn Device, seg_len: u64, page: usize) -> Result<u32> {
    let len = page_len(seg_len, page);
    let mut buf = vec![0u8; len];
    if len > 0 {
        seg.read_at(page as u64 * PAGE_SIZE, &mut buf)?;
    }
    Ok(crc32(&buf))
}

/// Reads `page` into `buf` with checksum scrutiny: mirror read-repair via
/// [`Device::read_verified`], then up to [`MEDIA_READ_RETRIES`] re-reads
/// to rule out transient (in-flight) corruption. Returns `(verified,
/// healed)`: `healed` means the first read failed verification but a
/// repair or re-read recovered the page.
pub(crate) fn read_page_verified(
    dev: &dyn Device,
    catalog: &SegmentChecksums,
    page: usize,
    buf: &mut [u8],
) -> Result<(bool, bool)> {
    let page_off = page as u64 * PAGE_SIZE;
    let verify = |b: &[u8]| catalog.verify(page, b);
    let mut outcome = dev.read_verified(page_off, buf, &verify)?;
    let mut reread = false;
    for _ in 0..MEDIA_READ_RETRIES {
        if outcome.is_verified() {
            break;
        }
        reread = true;
        outcome = dev.read_verified(page_off, buf, &verify)?;
    }
    let verified = outcome.is_verified();
    let healed = verified && (reread || outcome == rvm_storage::VerifiedRead::Repaired);
    Ok((verified, healed))
}

/// Corruption counts from a verified tree application.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ApplyOutcome {
    /// Pages whose pre-apply image failed checksum verification.
    pub corruptions_detected: u64,
    /// Detected pages whose post-apply checksum is nonetheless exact:
    /// read-repair/re-read recovered the old image, or the tree rewrote
    /// the whole page.
    pub corruptions_repaired: u64,
}

/// Why a tree is being applied — it decides how an unverifiable,
/// partially covered page is treated (see [`apply_tree_verified`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ApplyContext {
    /// Crash recovery re-applying the redo span. A page in the span's
    /// footprint that fails verification is *expected*: the crashed apply
    /// tore exactly the tree-covered ranges (range writes are the only
    /// segment writes), so bytes outside them are intact and the tree is
    /// authoritative inside them — the entry is recomputed from the
    /// post-apply page rather than quarantining a benign torn write.
    Recovery,
    /// A live truncation over a healthy instance. No crash happened, so
    /// an unverifiable pre-image is genuine rot; re-adopting it would
    /// launder the rotted remainder into a fresh catalog entry.
    Truncation,
}

/// Applies a latest-wins interval tree to a segment device, keeping the
/// checksum catalog exact — the one shared write path of truncation and
/// recovery.
///
/// Without a catalog this is a plain range apply. With one, every touched
/// page's *pre-apply* image is read under checksum scrutiny so that rot in
/// the unwritten remainder of a page cannot be laundered into a fresh
/// catalog entry: a verified (or repaired) page gets an exact post-apply
/// checksum; an unverifiable page gets one if the tree rewrites it
/// completely, or — in the [`ApplyContext::Recovery`] context — by
/// re-adoption of the post-apply bytes (a torn page inside the redo
/// footprint is the crash being recovered from, not rot). Otherwise the
/// stale entry stays so the page keeps failing verification until a
/// mirror, a scrub rung, or quarantine resolves it. Ordering: range
/// writes → segment sync → catalog persist; the caller advances the log
/// head only after this returns.
pub(crate) fn apply_tree_verified(
    dev: &dyn Device,
    catalog: Option<&SegmentChecksums>,
    tree: &IntervalMap,
    ctx: ApplyContext,
) -> Result<ApplyOutcome> {
    let mut outcome = ApplyOutcome::default();
    let Some(catalog) = catalog else {
        for (start, payload) in tree.iter() {
            dev.write_at(start, payload)?;
        }
        dev.sync()?;
        return Ok(outcome);
    };
    let seg_len = dev.len()?;
    // Bytes the tree covers of each touched page.
    let mut covered: BTreeMap<usize, u64> = BTreeMap::new();
    for (start, payload) in tree.iter() {
        let mut off = start;
        let end = start + payload.len() as u64;
        while off < end {
            let page = (off / PAGE_SIZE) as usize;
            let page_end = (page as u64 + 1) * PAGE_SIZE;
            let take = end.min(page_end) - off;
            *covered.entry(page).or_insert(0) += take;
            off += take;
        }
    }
    for (&page, &covered_bytes) in &covered {
        let plen = page_len(seg_len, page);
        let mut buf = vec![0u8; plen];
        let (verified, healed) = read_page_verified(dev, catalog, page, &mut buf)?;
        if !verified || healed {
            outcome.corruptions_detected += 1;
        }
        let fully_rewritten = covered_bytes == plen as u64;
        tree.overlay_onto(page as u64 * PAGE_SIZE, &mut buf);
        if verified || fully_rewritten {
            if !verified || healed {
                outcome.corruptions_repaired += 1;
            }
            catalog.update(page, &buf);
        } else if ctx == ApplyContext::Recovery {
            // Unverifiable and only partially covered, but this is the
            // redo of a crashed apply: the tear that explains the
            // mismatch lies inside the covered ranges being rewritten
            // below, so the post-apply page (device remainder + tree
            // data) is the committed image — re-adopt it. Counted as
            // detected but not repaired: a mirror already had its
            // chance in `read_page_verified`, and rot that struck the
            // uncovered remainder during the same window is
            // indistinguishable from the tear here.
            catalog.update(page, &buf);
        }
        // else: live truncation over a partially-covered, unverifiable
        // page — the committed ranges below are still authoritative for
        // their bytes, but the stale entry stays so the page keeps
        // failing verification until a mirror or quarantine resolves it.
    }
    for (start, payload) in tree.iter() {
        dev.write_at(start, payload)?;
    }
    dev.sync()?;
    catalog.persist()?;
    Ok(outcome)
}

/// What one scrub pass did ([`Rvm::scrub`](crate::Rvm::scrub) and the
/// background scrubber).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Pages checksum-verified this pass.
    pub pages_scanned: u64,
    /// Pages whose first read failed verification.
    pub corruptions_detected: u64,
    /// Detected corruptions healed (mirror read-repair or rewrite from
    /// the committed image).
    pub corruptions_repaired: u64,
    /// Pages whose corruption survived the whole repair ladder; their
    /// regions are now quarantined (degraded, read-only).
    pub pages_quarantined: u64,
    /// Pages skipped: uncommitted transaction activity pinned them, an
    /// epoch truncation owned the segment writers, or their region was
    /// already quarantined. They are re-examined on the next pass.
    pub pages_skipped: u64,
}

impl ScrubReport {
    /// `true` when every detected corruption was repaired and nothing
    /// was quarantined.
    pub fn is_clean(&self) -> bool {
        self.corruptions_detected == self.corruptions_repaired && self.pages_quarantined == 0
    }

    /// Field-wise accumulation (background scrubber totals).
    pub fn absorb(&mut self, other: &ScrubReport) {
        self.pages_scanned += other.pages_scanned;
        self.corruptions_detected += other.corruptions_detected;
        self.corruptions_repaired += other.corruptions_repaired;
        self.pages_quarantined += other.pages_quarantined;
        self.pages_skipped += other.pages_skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::MemDevice;

    fn seg_with(len: u64, pattern: u8) -> Arc<MemDevice> {
        let seg = Arc::new(MemDevice::with_len(len));
        seg.write_at(0, &vec![pattern; len as usize]).unwrap();
        seg
    }

    #[test]
    fn adoption_then_reload_round_trips() {
        let seg = seg_with(PAGE_SIZE * 2 + 100, 7);
        let side: Arc<dyn Device> = Arc::new(MemDevice::with_len(0));
        let cat = SegmentChecksums::open(side.clone(), seg.as_ref(), PAGE_SIZE * 2 + 100).unwrap();
        assert_eq!(cat.pages(), 3);
        let mut page = vec![0u8; PAGE_SIZE as usize];
        seg.read_at(0, &mut page).unwrap();
        assert!(cat.verify(0, &page));
        // Adoption persisted: a second open loads, not re-adopts — mutate
        // the segment first to prove the loaded entries are the old ones.
        seg.write_at(10, &[99]).unwrap();
        let reloaded = SegmentChecksums::open(side, seg.as_ref(), PAGE_SIZE * 2 + 100).unwrap();
        seg.read_at(0, &mut page).unwrap();
        assert!(!reloaded.verify(0, &page), "entry predates the mutation");
    }

    #[test]
    fn tail_page_checksums_cover_actual_length() {
        let len = PAGE_SIZE + 123;
        let seg = seg_with(len, 5);
        let sum = checksum_of(seg.as_ref(), len, 1).unwrap();
        assert_eq!(sum, crc32(&[5u8; 123]));
        assert_eq!(page_len(len, 1), 123);
        assert_eq!(page_count(len), 2);
    }

    #[test]
    fn verify_detects_a_single_flipped_bit() {
        let seg = seg_with(PAGE_SIZE, 1);
        let side: Arc<dyn Device> = Arc::new(MemDevice::with_len(0));
        let cat = SegmentChecksums::open(side, seg.as_ref(), PAGE_SIZE).unwrap();
        let mut page = vec![1u8; PAGE_SIZE as usize];
        assert!(cat.verify(0, &page));
        page[2048] ^= 0x01;
        assert!(!cat.verify(0, &page));
    }

    #[test]
    fn update_and_persist_survive_reopen() {
        let seg = seg_with(PAGE_SIZE * 2, 3);
        let side: Arc<dyn Device> = Arc::new(MemDevice::with_len(0));
        let cat = SegmentChecksums::open(side.clone(), seg.as_ref(), PAGE_SIZE * 2).unwrap();
        let new_page = vec![9u8; PAGE_SIZE as usize];
        seg.write_at(PAGE_SIZE, &new_page).unwrap();
        cat.update(1, &new_page);
        cat.persist().unwrap();
        let reloaded = SegmentChecksums::open(side, seg.as_ref(), PAGE_SIZE * 2).unwrap();
        assert!(reloaded.verify(1, &new_page));
        assert_eq!(reloaded.expected(1), Some(crc32(&new_page)));
    }

    #[test]
    fn torn_catalog_is_readopted_not_trusted() {
        let seg = seg_with(PAGE_SIZE, 4);
        let side: Arc<dyn Device> = Arc::new(MemDevice::with_len(0));
        let cat = SegmentChecksums::open(side.clone(), seg.as_ref(), PAGE_SIZE).unwrap();
        drop(cat);
        // Corrupt one entry byte without fixing the table CRC: the next
        // open must reject the catalog and re-adopt from the (clean)
        // segment rather than report false corruption.
        let mut b = [0u8; 1];
        side.read_at(HEADER_SIZE, &mut b).unwrap();
        side.write_at(HEADER_SIZE, &[b[0] ^ 0xFF]).unwrap();
        let reloaded = SegmentChecksums::open(side, seg.as_ref(), PAGE_SIZE).unwrap();
        let page = vec![4u8; PAGE_SIZE as usize];
        assert!(reloaded.verify(0, &page));
    }

    #[test]
    fn catalog_grows_with_the_segment() {
        let seg = seg_with(PAGE_SIZE, 6);
        let side: Arc<dyn Device> = Arc::new(MemDevice::with_len(0));
        let cat = SegmentChecksums::open(side, seg.as_ref(), PAGE_SIZE).unwrap();
        assert_eq!(cat.pages(), 1);
        seg.set_len(PAGE_SIZE * 3).unwrap();
        cat.ensure_covers(seg.as_ref(), PAGE_SIZE * 3).unwrap();
        assert_eq!(cat.pages(), 3);
        let zeros = vec![0u8; PAGE_SIZE as usize];
        assert!(cat.verify(2, &zeros), "grown pages adopt zero-fill");
    }

    #[test]
    fn scrub_report_accumulates_and_judges() {
        let mut total = ScrubReport::default();
        total.absorb(&ScrubReport {
            pages_scanned: 10,
            corruptions_detected: 2,
            corruptions_repaired: 2,
            ..Default::default()
        });
        assert!(total.is_clean());
        total.absorb(&ScrubReport {
            pages_scanned: 1,
            corruptions_detected: 1,
            ..Default::default()
        });
        assert!(!total.is_clean());
        assert_eq!(total.pages_scanned, 11);
    }

    #[test]
    fn sidecar_names_are_stable() {
        assert_eq!(sidecar_name("seg"), "seg.sums");
        assert_eq!(sidecar_name("/tmp/data"), "/tmp/data.sums");
    }

    #[test]
    fn apply_tree_keeps_catalog_exact_on_clean_pages() {
        let seg = seg_with(PAGE_SIZE * 2, 1);
        let side: Arc<dyn Device> = Arc::new(MemDevice::with_len(0));
        let cat = SegmentChecksums::open(side, seg.as_ref(), PAGE_SIZE * 2).unwrap();
        let mut tree = IntervalMap::new();
        tree.insert_if_uncovered(100, &[9; 50]);
        let out =
            apply_tree_verified(seg.as_ref(), Some(&cat), &tree, ApplyContext::Truncation).unwrap();
        assert_eq!(out.corruptions_detected, 0);
        let mut page = vec![1u8; PAGE_SIZE as usize];
        page[100..150].fill(9);
        assert!(cat.verify(0, &page));
        let mut on_disk = vec![0u8; PAGE_SIZE as usize];
        seg.read_at(0, &mut on_disk).unwrap();
        assert_eq!(on_disk, page);
    }

    #[test]
    fn apply_tree_repairs_a_fully_rewritten_rotted_page() {
        let seg = seg_with(PAGE_SIZE, 2);
        let side: Arc<dyn Device> = Arc::new(MemDevice::with_len(0));
        let cat = SegmentChecksums::open(side, seg.as_ref(), PAGE_SIZE).unwrap();
        seg.write_at(50, &[0xEE]).unwrap(); // silent rot
        let mut tree = IntervalMap::new();
        tree.insert_if_uncovered(0, &[7; PAGE_SIZE as usize]);
        let out =
            apply_tree_verified(seg.as_ref(), Some(&cat), &tree, ApplyContext::Truncation).unwrap();
        assert_eq!(out.corruptions_detected, 1);
        assert_eq!(out.corruptions_repaired, 1);
        assert!(cat.verify(0, &[7u8; PAGE_SIZE as usize]));
    }

    #[test]
    fn apply_tree_keeps_a_partially_covered_rotted_page_flagged() {
        let seg = seg_with(PAGE_SIZE, 3);
        let side: Arc<dyn Device> = Arc::new(MemDevice::with_len(0));
        let cat = SegmentChecksums::open(side, seg.as_ref(), PAGE_SIZE).unwrap();
        seg.write_at(4000, &[0xEE]).unwrap(); // rot outside the tree span
        let mut tree = IntervalMap::new();
        tree.insert_if_uncovered(0, &[8; 64]);
        let out =
            apply_tree_verified(seg.as_ref(), Some(&cat), &tree, ApplyContext::Truncation).unwrap();
        assert_eq!(out.corruptions_detected, 1);
        assert_eq!(out.corruptions_repaired, 0);
        // Committed bytes landed, but the page still fails verification:
        // the rot was not laundered into the catalog.
        let mut on_disk = vec![0u8; PAGE_SIZE as usize];
        seg.read_at(0, &mut on_disk).unwrap();
        assert_eq!(&on_disk[..64], &[8u8; 64]);
        assert!(!cat.verify(0, &on_disk));
    }
}
