//! Findings and their stable identifiers.

use std::fmt;

/// The four analysis passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    LockOrder,
    DeviceFallibility,
    UnloggedWrite,
    PanicSurface,
}

impl Pass {
    /// Stable slug used in finding IDs, JSON, and `lint:allow(...)`.
    pub fn slug(self) -> &'static str {
        match self {
            Pass::LockOrder => "lock-order",
            Pass::DeviceFallibility => "device-fallibility",
            Pass::UnloggedWrite => "unlogged-write",
            Pass::PanicSurface => "panic-surface",
        }
    }

    /// Short uppercase tag used in the ID prefix.
    fn tag(self) -> &'static str {
        match self {
            Pass::LockOrder => "LOCK",
            Pass::DeviceFallibility => "DEV",
            Pass::UnloggedWrite => "ULW",
            Pass::PanicSurface => "PANIC",
        }
    }

    pub const ALL: [Pass; 4] = [
        Pass::LockOrder,
        Pass::DeviceFallibility,
        Pass::UnloggedWrite,
        Pass::PanicSurface,
    ];
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// One finding.
///
/// The `id` is a function of the pass, the workspace-relative file path,
/// the enclosing function, and a pass-specific *detail key* (e.g.
/// `"check->core"` for a lock inversion) — deliberately **not** of the
/// line number, so the baseline survives unrelated edits to the same
/// file. Two identical detail keys in one function get `#2`, `#3`, ...
/// ordinal suffixes before hashing.
#[derive(Debug, Clone)]
pub struct Finding {
    pub id: String,
    pub pass: Pass,
    pub file: String,
    pub line: u32,
    pub function: String,
    pub message: String,
}

/// 64-bit FNV-1a: tiny, stable, dependency-free. Used only for finding
/// IDs — no adversarial input, collisions merely merge two baseline
/// entries.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the stable finding ID.
pub fn finding_id(pass: Pass, file: &str, function: &str, detail: &str) -> String {
    let key = format!("{}|{}|{}|{}", pass.slug(), file, function, detail);
    format!("RVML-{}-{:08x}", pass.tag(), fnv64(key.as_bytes()) as u32)
}

/// A builder that assigns ordinal suffixes to repeated detail keys
/// within one (file, function) so IDs stay unique *and* stable in order.
#[derive(Default)]
pub struct IdSpace {
    seen: std::collections::HashMap<String, u32>,
}

impl IdSpace {
    pub fn id(&mut self, pass: Pass, file: &str, function: &str, detail: &str) -> String {
        let key = format!("{}|{}|{}|{}", pass.slug(), file, function, detail);
        let n = self.seen.entry(key).or_insert(0);
        *n += 1;
        if *n == 1 {
            finding_id(pass, file, function, detail)
        } else {
            finding_id(pass, file, function, &format!("{detail}#{n}"))
        }
    }
}

impl Finding {
    /// Human-readable one-liner.
    pub fn render(&self) -> String {
        format!(
            "{}: {}:{}: in `{}`: {}",
            self.id, self.file, self.line, self.function, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_line_independent() {
        let a = finding_id(
            Pass::LockOrder,
            "crates/core/src/rvm.rs",
            "Rvm::query",
            "check->core",
        );
        let b = finding_id(
            Pass::LockOrder,
            "crates/core/src/rvm.rs",
            "Rvm::query",
            "check->core",
        );
        assert_eq!(a, b);
        assert!(a.starts_with("RVML-LOCK-"));
    }

    #[test]
    fn id_space_disambiguates_duplicates() {
        let mut s = IdSpace::default();
        let a = s.id(Pass::DeviceFallibility, "f.rs", "g", "sync|discard");
        let b = s.id(Pass::DeviceFallibility, "f.rs", "g", "sync|discard");
        assert_ne!(a, b);
    }
}
