// Known-good fixture for the panic-surface pass: fallible shapes at the
// public boundary; panics exist only where the public API cannot reach
// them. Zero findings expected.

pub fn api_returns_option(values: &[u64]) -> Option<u64> {
    values.first().copied()
}

pub fn api_gets_safely(buf: &[u8]) -> u8 {
    buf.get(3).copied().unwrap_or(0)
}

/// Private and never called from a public function: outside the
/// reachable panic surface.
fn internal_only_tooling(values: &[u64]) -> u64 {
    values.first().unwrap() + 1
}

/// Crate-visible is not part of the *public* surface either.
pub(crate) fn crate_only(values: &[u64]) -> u64 {
    values[0]
}

#[cfg(test)]
mod tests {
    pub fn unwraps_in_tests(values: &[u64]) -> u64 {
        values.first().unwrap() + super::api_gets_safely(&[]) as u64
    }
}
