//! Regenerates **Table 2** (savings due to RVM optimizations, §7.3):
//! per-machine log-traffic reductions from intra- and inter-transaction
//! optimizations, on synthetic Coda server/client workloads, side by side
//! with the paper's observed values.
//!
//! Usage: `table2 [--scale N]` (transaction counts are the paper's ÷ N,
//! default 20).

use coda_wl::{profiles, run_machine, MachineKind, PAPER_TABLE2, SCALE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = SCALE;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale N");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("Table 2: Savings Due to RVM Optimizations");
    println!("Synthetic Coda workloads; transaction counts are the paper's / {scale}.");
    println!("Measured values come from the library's own optimization counters;");
    println!("'paper' columns quote Table 2 of the SOSP '93 paper.");
    println!();
    println!(
        "{:>8} {:>7} | {:>7} {:>12} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "Machine",
        "Type",
        "Txns",
        "BytesToLog",
        "Intra%",
        "paper",
        "Inter%",
        "paper",
        "Total%",
        "paper"
    );
    println!("{}", "-".repeat(110));
    for (profile, paper) in profiles().iter().zip(PAPER_TABLE2.iter()) {
        let mut p = profile.clone();
        p.txns = paper.txns / scale;
        let row = run_machine(&p, 0x542D + scale);
        let kind = match p.kind {
            MachineKind::Server => "server",
            MachineKind::Client => "client",
        };
        println!(
            "{:>8} {:>7} | {:>7} {:>12} | {:>7.1}% {:>7.1}% | {:>7.1}% {:>7.1}% | {:>7.1}% {:>7.1}%",
            row.name,
            kind,
            row.txns,
            row.bytes_logged,
            row.intra_pct,
            paper.intra_pct,
            row.inter_pct,
            paper.inter_pct,
            row.total_pct(),
            paper.intra_pct + paper.inter_pct,
        );
    }
    println!();
    println!("Servers use flush-mode commits, so inter-transaction optimization");
    println!("never applies to them — exactly as in the paper.");
}
