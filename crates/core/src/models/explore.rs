//! A minimal exhaustive interleaving explorer.
//!
//! A [`Model`] is a deterministic transition system whose only source of
//! nondeterminism is *which thread steps next*. [`explore`] walks the
//! entire reachable state graph (depth-first, with visited-state dedup),
//! invoking the model's invariant check at every state. A state where no
//! thread is runnable but not every thread has finished is reported as a
//! deadlock — the shape a lost wakeup takes in a condvar protocol.

use std::collections::HashSet;
use std::hash::Hash;

/// A multithreaded protocol restated as per-thread step functions over
/// cloneable shared state.
pub trait Model: Clone + Eq + Hash {
    /// Number of threads in the model (fixed).
    fn threads(&self) -> usize;
    /// Whether thread `t` can take a step in this state: not finished and
    /// not blocked (on a lock or in a condvar wait-set).
    fn runnable(&self, t: usize) -> bool;
    /// Whether thread `t` has run to completion.
    fn finished(&self, t: usize) -> bool;
    /// Perform one atomic step of thread `t`. Only called when
    /// `runnable(t)`.
    fn step(&mut self, t: usize);
    /// Invariant check, run at every reachable state.
    fn check(&self) -> Result<(), String>;
}

/// What [`explore`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// Distinct states visited.
    pub states: u64,
    /// First violation encountered, if any: the invariant message and the
    /// schedule (thread index per step) that reaches it from the initial
    /// state.
    pub violation: Option<(String, Vec<usize>)>,
    /// Whether the whole reachable graph was covered (false only if
    /// `max_states` was hit first).
    pub complete: bool,
}

/// Exhaustively explores every schedule of `initial`, visiting at most
/// `max_states` distinct states.
pub fn explore<M: Model>(initial: M, max_states: u64) -> ExploreReport {
    let mut visited: HashSet<M> = HashSet::new();
    // Each frame carries the state plus the schedule that produced it, so
    // a violation is reported with its witness interleaving.
    let mut stack: Vec<(M, Vec<usize>)> = vec![(initial, Vec::new())];
    let mut states = 0u64;

    while let Some((state, schedule)) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        states += 1;
        if states > max_states {
            return ExploreReport {
                states,
                violation: None,
                complete: false,
            };
        }
        if let Err(msg) = state.check() {
            return ExploreReport {
                states,
                violation: Some((msg, schedule)),
                complete: false,
            };
        }
        let runnable: Vec<usize> = (0..state.threads())
            .filter(|&t| state.runnable(t))
            .collect();
        if runnable.is_empty() {
            if !(0..state.threads()).all(|t| state.finished(t)) {
                let blocked: Vec<usize> = (0..state.threads())
                    .filter(|&t| !state.finished(t))
                    .collect();
                return ExploreReport {
                    states,
                    violation: Some((
                        format!("deadlock: threads {blocked:?} blocked forever (lost wakeup?)"),
                        schedule,
                    )),
                    complete: false,
                };
            }
            continue;
        }
        for t in runnable {
            let mut next = state.clone();
            next.step(t);
            let mut sched = schedule.clone();
            sched.push(t);
            stack.push((next, sched));
        }
    }

    ExploreReport {
        states,
        violation: None,
        complete: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter twice each; a third value
    /// records the max observed. Sanity-checks full coverage and dedup.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Counter {
        pcs: [u8; 2],
        value: u8,
    }

    impl Model for Counter {
        fn threads(&self) -> usize {
            2
        }
        fn runnable(&self, t: usize) -> bool {
            self.pcs[t] < 2
        }
        fn finished(&self, t: usize) -> bool {
            self.pcs[t] == 2
        }
        fn step(&mut self, t: usize) {
            self.pcs[t] += 1;
            self.value += 1;
        }
        fn check(&self) -> Result<(), String> {
            if self.value > 4 {
                return Err("counter exceeded theoretical max".into());
            }
            Ok(())
        }
    }

    #[test]
    fn explores_all_interleavings_of_a_trivial_model() {
        let report = explore(
            Counter {
                pcs: [0, 0],
                value: 0,
            },
            10_000,
        );
        assert!(report.complete);
        assert!(report.violation.is_none());
        // pcs ∈ {0,1,2}², value = pcs[0]+pcs[1]: 9 states.
        assert_eq!(report.states, 9);
    }

    /// A thread that blocks forever must be reported as a deadlock.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Stuck {
        done: bool,
    }

    impl Model for Stuck {
        fn threads(&self) -> usize {
            1
        }
        fn runnable(&self, _t: usize) -> bool {
            false
        }
        fn finished(&self, _t: usize) -> bool {
            self.done
        }
        fn step(&mut self, _t: usize) {}
        fn check(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn blocked_thread_is_a_deadlock_violation() {
        let report = explore(Stuck { done: false }, 100);
        let (msg, _) = report.violation.expect("deadlock found");
        assert!(msg.contains("deadlock"));
    }

    #[test]
    fn state_budget_is_honored() {
        let report = explore(
            Counter {
                pcs: [0, 0],
                value: 0,
            },
            3,
        );
        assert!(!report.complete);
    }
}
