//! `rvmlog lint` round-trip: the lint driver is reachable through the
//! log tool with identical semantics (exit codes, JSON, baseline
//! suppression).

use std::path::Path;
use std::process::Command;

fn rvmlog() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rvmlog"))
}

fn write_mini_workspace(dir: &Path) {
    let core = dir.join("crates/core/src");
    std::fs::create_dir_all(&core).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(
        core.join("careless.rs"),
        "pub fn careless(dev: &dyn Device) { let _ = dev.sync(); }\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("lockorder.toml"),
        "[[lock]]\nrank = 10\nname = \"core\"\npatterns = [\"core.lock\"]\ndesc = \"core\"\n",
    )
    .unwrap();
}

#[test]
fn lint_subcommand_reports_and_respects_baseline() {
    let dir = std::env::temp_dir().join(format!("rvmlog-lint-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_mini_workspace(&dir);
    let root = dir.to_str().unwrap();

    // Fresh finding through the subcommand: exit 1, JSON schema intact.
    let out = rvmlog()
        .args(["lint", "--root", root, "--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"schema\""), "{json}");
    assert!(json.contains("RVML-DEV-"), "{json}");
    assert!(json.contains("\"device-fallibility\""), "{json}");

    // Baseline it, then the same invocation is green.
    let out = rvmlog()
        .args(["lint", "--root", root, "--write-baseline"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = rvmlog().args(["lint", "--root", root]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 new, 1 baselined"), "{text}");

    // The subcommand is advertised in the usage text.
    let out = rvmlog().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let usage = String::from_utf8(out.stderr).unwrap();
    assert!(usage.contains("rvmlog lint"), "{usage}");

    let _ = std::fs::remove_dir_all(&dir);
}
